"""The storage server node (paper S3.1, Table 2).

A :class:`StorageServer` hosts one or more CCDB slices over one storage
adapter.  It:

* routes each request to the slice owning its key;
* serves gets with the one-device-read guarantee;
* serves puts into the slice's memtable, flushing full 8 MB patches to
  storage from background processes (with bounded pending patches, so
  sustained writers feel storage backpressure);
* runs per-slice background compaction -- the internal read/write
  traffic that Figure 14 measures.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.network import Nic, TEN_GBE_MB_S
from repro.cluster.storage import (
    ConventionalNodeStorage,
    SDFNodeStorage,
    ZonedNodeStorage,
)
from repro.errors import ClusterError, TransientFault, WrongEpochError
from repro.kv.common import PlaceholderValue
from repro.kv.compaction import split_patch
from repro.kv.slice import Slice
from repro.qos.admission import DeadlineExceededError
from repro.sim import Resource, Simulator, Store
from repro.sim.stats import Counter, ThroughputMeter

#: Table 2: client and server node configuration.
SERVER_CONFIG = {
    "cpu": "2x Intel E5620, 2.4 GHz",
    "memory_gb": 32,
    "os": "Linux 2.6.32 kernel",
    "nic": "2x Intel 82599 10 GbE",
}


class NodeDownError(TransientFault, ClusterError):
    """Request sent to a crashed server; callers fail over or retry."""


class StorageServer:
    """One storage node hosting CCDB slices."""

    def __init__(
        self,
        sim: Simulator,
        storage,
        slices: List[Slice],
        per_request_cpu_ns: int = 200_000,
        copy_mb_per_s: float = 1250.0,
        max_pending_patches: int = 2,
        enable_compaction: bool = True,
        nic: Optional[Nic] = None,
        wal_replay_ns_per_record: int = 2_000,
    ):
        self.sim = sim
        self.storage = storage
        self.slices = list(slices)
        self.per_request_cpu_ns = per_request_cpu_ns
        self.copy_mb_per_s = copy_mb_per_s
        self.max_pending_patches = max_pending_patches
        self.enable_compaction = enable_compaction
        self.nic = nic if nic is not None else Nic(
            sim, TEN_GBE_MB_S, lanes=2, name="server"
        )
        self._flush_slots = {
            s.slice_id: Resource(sim, capacity=max_pending_patches)
            for s in self.slices
        }
        # Each slice is served by a single handler thread (CCDB's model):
        # per-request KV processing is serialized per slice, costing a
        # fixed dispatch overhead plus a size-proportional copy/checksum
        # term.  (~0.6 ms for a 512 KB value reproduces the paper's
        # single-slice throughput envelope, Figure 10.)
        self._slice_cpu = {
            s.slice_id: Resource(sim, capacity=1) for s in self.slices
        }
        self._compaction_pokes = {s.slice_id: Store(sim) for s in self.slices}
        self.compaction_read_meter = ThroughputMeter("compaction.read")
        self.compaction_write_meter = ThroughputMeter("compaction.write")
        #: Merges abandoned on a transient storage fault (retried on the
        #: next flush poke; nothing is mutated before ``apply_compaction``).
        self.compaction_aborts = Counter("compaction.aborts")
        self.gets = Counter("server.gets")
        self.puts = Counter("server.puts")
        self.scans = Counter("server.scans")
        #: Optional :class:`repro.obs.Observability`; see :meth:`attach_obs`.
        self.obs = None
        #: Optional :class:`repro.qos.admission.AdmissionController`; set
        #: by ``repro.qos.attach_server_qos``.  None keeps every request
        #: admitted unconditionally.
        self.qos = None
        #: CPU latency multiplier (brownout fault); 1.0 = healthy.
        self.slowdown = 1.0
        #: Liveness: requests raise :class:`NodeDownError` while False.
        self.up = True
        #: Highest controller leadership term this node has accepted a
        #: command from.  A replicated controller group's new leader
        #: installs its term here on election; commands stamped with an
        #: older term (a deposed leader) are rejected.  0 = never fenced
        #: (the immortal single-controller world).
        self.controller_term = 0
        #: Bumped on every crash; in-flight background work from an
        #: earlier epoch discards its results instead of registering them.
        self._epoch = 0
        self.wal_replay_ns_per_record = wal_replay_ns_per_record
        self.crashes = 0
        self.restarts = 0
        if enable_compaction:
            for slice_ in self.slices:
                sim.process(self._compactor(slice_))

    # -- plane wiring ------------------------------------------------------------------
    def attach(self, plane, *, name: str = "server") -> "StorageServer":
        """Wire one plane into this server, dispatching on plane type.

        The unified entry point for every opt-in plane:

        * :class:`repro.obs.Observability` -- request metrics, per-slice
          counters and trace spans (``name`` is unused);
        * :class:`repro.faults.FaultPlan` -- the server becomes the
          scheduled-fault target at site ``name`` and the device layers
          underneath gain their injectors (sites ``{name}.*``);
        * :class:`repro.qos.QosPlan` -- admission control/write stalls
          on this server plus channel bounds below it (metrics prefixed
          ``{name}``);
        * :class:`repro.policy.PolicyPlan` -- the server is recorded
          under ``name`` as an actuator target for policy actions.

        Returns ``self`` so attachments chain fluently.
        """
        from repro.faults.plan import FaultPlan
        from repro.obs.attach import Observability
        from repro.policy.engine import PolicyPlan
        from repro.qos.config import QosPlan

        if isinstance(plane, Observability):
            self.attach_obs(plane)
        elif isinstance(plane, FaultPlan):
            from repro.faults.wire import attach_server_faults

            attach_server_faults(plane, self, site=name)
        elif isinstance(plane, QosPlan):
            from repro.qos.wire import attach_server_qos

            attach_server_qos(plane, self, name=name)
        elif isinstance(plane, PolicyPlan):
            plane._bind_server(name, self)
        else:
            raise TypeError(
                f"don't know how to attach {type(plane).__name__}; expected "
                "Observability, FaultPlan, QosPlan or PolicyPlan"
            )
        return self

    # -- slice hosting -----------------------------------------------------------------
    def add_slice(self, slice_: Slice, importing: bool = False) -> None:
        """Start hosting a slice (the control plane's placement hook).

        ``importing`` marks a migration target still catching up: it is
        not routable and runs no compactor until
        :meth:`finish_import` flips it live.
        """
        if any(s.slice_id == slice_.slice_id for s in self.slices):
            raise ValueError(f"already hosting slice {slice_.slice_id}")
        slice_.importing = importing
        self.slices.append(slice_)
        self._flush_slots[slice_.slice_id] = Resource(
            self.sim, capacity=self.max_pending_patches
        )
        self._slice_cpu[slice_.slice_id] = Resource(self.sim, capacity=1)
        self._compaction_pokes[slice_.slice_id] = Store(self.sim)
        if self.obs is not None:
            slice_.bind_metrics(self.obs.metrics)
        if self.enable_compaction and not importing:
            self.sim.process(self._compactor(slice_))

    def finish_import(self, slice_: Slice) -> None:
        """Make an imported slice live (post-cutover): it becomes
        routable and its compactor starts."""
        if slice_ not in self.slices:
            raise ValueError(f"not hosting slice {slice_.slice_id}")
        if not slice_.importing:
            raise ValueError(f"slice {slice_.slice_id} is not importing")
        slice_.importing = False
        if self.enable_compaction:
            self.sim.process(self._compactor(slice_))

    def remove_slice(self, slice_: Slice) -> None:
        """Stop hosting a slice (post-migration or post-merge).

        The per-slice resources stay behind so in-flight background
        work (a flush holding a slot, the compactor mid-merge) can
        still release them; the compactor notices the removal at its
        next wake-up and exits.
        """
        if slice_ not in self.slices:
            raise ValueError(f"not hosting slice {slice_.slice_id}")
        self.slices.remove(slice_)
        poke = self._compaction_pokes.get(slice_.slice_id)
        if poke is not None:
            poke.put(True)  # wake the compactor so it can exit

    # -- observability -----------------------------------------------------------------
    def attach_obs(self, obs) -> None:
        """Wire this server into an :class:`repro.obs.Observability`.

        Request counters and per-slice counters become snapshot metrics;
        gets/puts additionally record latency histograms and, when
        tracing is on, per-slice request spans with queue-wait split out.
        """
        self.obs = obs
        registry = obs.metrics
        registry.register_counter("server.gets", self.gets)
        registry.register_counter("server.puts", self.puts)
        registry.register_counter("server.scans", self.scans)
        for slice_ in self.slices:
            slice_.bind_metrics(registry)

    def _note_request(
        self,
        kind: str,
        slice_,
        start_ns: int,
        wait_ns: int,
        tenant: Optional[str] = None,
        **args,
    ) -> None:
        obs = self.obs
        now = self.sim.now
        obs.metrics.histogram(f"server.{kind}_ns").record(now - start_ns)
        if tenant is not None:
            # Per-tenant labels: one histogram + counter per (tenant,
            # kind), so a multi-tenant scenario's report can split
            # service latency by tenant without touching the hot path
            # of untagged (tenant=None) requests.
            obs.metrics.histogram(f"tenant.{tenant}.{kind}_ns").record(
                now - start_ns
            )
            obs.metrics.counter(f"tenant.{tenant}.{kind}s").add(1)
        if obs.trace.enabled:
            obs.trace.span(
                f"server/slice{slice_.slice_id}",
                kind,
                start_ns,
                now,
                wait_ns=wait_ns,
                **args,
            )

    # -- crash / recovery --------------------------------------------------------------
    def _check_up(self) -> None:
        if not self.up:
            raise NodeDownError(f"server is down (epoch {self._epoch})")

    def crash(self) -> int:
        """Fail-stop the server *now* (synchronous, no simulated time).

        Volatile per-slice state (memtables, frozen-but-unstored patches)
        is lost; registered runs and the WAL survive.  New requests raise
        :class:`NodeDownError`; requests already past their liveness
        checks run to completion against the post-crash state, modelling
        responses that were in flight when the machine died -- the
        client-side timeout is what bounds those.  Returns the number of
        pending patches lost.
        """
        if not self.up:
            raise RuntimeError("crash() on a server that is already down")
        self.up = False
        self._epoch += 1
        self.crashes += 1
        lost = 0
        for slice_ in self.slices:
            lost += slice_.lsm.lose_volatile()
        if self.obs is not None:
            self.obs.metrics.counter("server.crashes").add(1)
            if self.obs.trace.enabled:
                self.obs.trace.instant(
                    "server/lifecycle",
                    "crash",
                    self.sim.now,
                    epoch=self._epoch,
                    lost_pending=lost,
                )
        return lost

    def restart(self):
        """Generator: bring the server back up, replaying each slice's
        WAL (charged at ``wal_replay_ns_per_record``).  Containers that
        re-freeze during replay are stored before the node goes live, so
        a recovered server serves exactly the acknowledged state.
        """
        if self.up:
            raise RuntimeError("restart() on a server that is up")
        start = self.sim.now
        replayed = 0
        for slice_ in self.slices:
            n_records, refrozen = slice_.lsm.recover()
            replayed += n_records
            for frozen in refrozen:
                handle = yield from self.storage.store_patch(frozen.patch)
                slice_.lsm.register_patch(frozen, handle)
        if replayed:
            yield self.sim.timeout(replayed * self.wal_replay_ns_per_record)
        self.up = True
        self.restarts += 1
        for slice_ in self.slices:
            yield self._compaction_pokes[slice_.slice_id].put(True)
        if self.obs is not None:
            self.obs.metrics.counter("server.restarts").add(1)
            if self.obs.trace.enabled:
                self.obs.trace.span(
                    "server/lifecycle",
                    "wal_replay",
                    start,
                    self.sim.now,
                    records=replayed,
                )
        return replayed

    # -- brownout (degraded-mode) ------------------------------------------------------
    def begin_brownout(self, multiplier: float = 10.0) -> None:
        """Degrade the node: every handler CPU charge is multiplied by
        ``multiplier`` until :meth:`end_brownout`.  The node stays up and
        keeps answering -- just slowly, which is exactly the failure mode
        crashes cannot exercise (clients must decide a live-but-slow
        node is not worth waiting for)."""
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1.0, got {multiplier}")
        self.slowdown = float(multiplier)
        if self.obs is not None:
            self.obs.metrics.counter("server.brownouts").add(1)
            if self.obs.trace.enabled:
                self.obs.trace.instant(
                    "server/lifecycle",
                    "brownout_begin",
                    self.sim.now,
                    multiplier=multiplier,
                )

    def end_brownout(self) -> None:
        """Restore healthy request latency."""
        self.slowdown = 1.0
        if self.obs is not None and self.obs.trace.enabled:
            self.obs.trace.instant(
                "server/lifecycle", "brownout_end", self.sim.now
            )

    def _slow(self, ns: int) -> int:
        """Apply the brownout multiplier to one CPU charge."""
        if self.slowdown == 1.0:
            return ns
        return int(ns * self.slowdown)

    # -- controller fencing ------------------------------------------------------------
    def fence_controller(self, term: int) -> None:
        """Accept a controller command stamped with leadership ``term``.

        The same epoch-fencing contract as :meth:`route`, applied to
        controller -> node traffic: a stamp older than the highest term
        this node has seen is a deposed leader still issuing commands,
        and is rejected with :class:`~repro.errors.WrongEpochError` (a
        :class:`~repro.errors.TransientFault`, so the deposed leader's
        migration aborts through the normal rollback path).  A newer
        stamp is adopted, fencing the previous leader from here on.
        """
        if term < self.controller_term:
            raise WrongEpochError(
                f"controller term {term} is stale; node has accepted "
                f"term {self.controller_term}"
            )
        self.controller_term = term

    # -- routing -------------------------------------------------------------------
    def route(self, key, epoch: Optional[int] = None) -> Slice:
        """The live slice owning this key.

        ``epoch`` is the routing epoch the client's cached table stamped
        on the request.  A stale stamp -- or a key this server no longer
        owns -- raises :class:`~repro.errors.WrongEpochError`, telling
        the client to refresh its routing table and retry.  Importing
        slices (migration targets still catching up) are never routable.
        Unstamped requests (``epoch=None``, the single-server fast path)
        keep the historical KeyError on a miss.
        """
        for slice_ in self.slices:
            if slice_.importing or not slice_.owns(key):
                continue
            if epoch is not None and epoch != slice_.epoch:
                raise WrongEpochError(
                    f"slice {slice_.slice_id} is at epoch {slice_.epoch}; "
                    f"request stamped epoch {epoch}"
                )
            return slice_
        if epoch is not None:
            raise WrongEpochError(
                f"no live slice on this server owns key {key!r}"
            )
        raise KeyError(f"no slice on this server owns key {key!r}")

    # -- request handlers (generators) -----------------------------------------------
    def _cpu_cost_ns(self, nbytes: int) -> int:
        """Slice-handler time: fixed dispatch + size-proportional copy."""
        from repro.sim.units import transfer_ns

        return self.per_request_cpu_ns + transfer_ns(nbytes, self.copy_mb_per_s)

    def handle_get(
        self,
        key,
        deadline_ns: Optional[int] = None,
        epoch: Optional[int] = None,
        tenant: Optional[str] = None,
    ):
        """Generator -> the value (or None): at most one device read.

        ``deadline_ns`` is the client's propagated absolute deadline:
        with admission control attached, a get whose deadline already
        passed (or passes while queued on the slice CPU) is shed instead
        of served -- it cannot possibly answer in time, so serving it
        would only steal capacity from requests that still can.
        ``epoch`` is the client's routing-table stamp (see :meth:`route`).
        ``tenant`` labels the request for per-tenant metrics and
        admission accounting; ``None`` (the default) changes nothing.
        """
        self._check_up()
        qos = self.qos
        if qos is not None:
            qos.try_admit("read", deadline_ns, tenant=tenant)
        try:
            self.gets.add()
            start = self.sim.now
            slice_ = self.route(key, epoch)
            slice_.reads.add()
            with self._slice_cpu[slice_.slice_id].request() as cpu:
                yield cpu
                wait_ns = self.sim.now - start
                yield self.sim.timeout(self._slow(self.per_request_cpu_ns))
            # The node may have died while this request queued; answering
            # from post-crash DRAM state could serve a stale miss.
            self._check_up()
            if epoch is not None and slice_.epoch != epoch:
                # Ownership moved while this request queued; the new
                # owner has the authoritative state now.
                raise WrongEpochError(
                    f"slice {slice_.slice_id} moved to epoch "
                    f"{slice_.epoch} while request queued"
                )
            if qos is not None and qos.expired(deadline_ns, tenant=tenant):
                raise DeadlineExceededError(
                    f"get of {key!r} missed its deadline while queued"
                )
            kind, payload = slice_.lsm.get(key)
            result = payload if kind == "value" else None
            if kind not in ("value", "miss"):
                result = yield from self.storage.read_value(payload, key)
                with self._slice_cpu[slice_.slice_id].request() as cpu:
                    yield cpu
                    yield self.sim.timeout(self._slow(
                        self._cpu_cost_ns(payload.size)
                        - self.per_request_cpu_ns
                    ))
            if result is not None:
                from repro.kv.common import sizeof_value

                slice_.bytes_read.add(sizeof_value(result))
            if self.obs is not None:
                self._note_request(
                    "get", slice_, start, wait_ns, tenant=tenant, source=kind
                )
            return result
        finally:
            if qos is not None:
                qos.release("read")

    def handle_put(
        self,
        key,
        value,
        deadline_ns: Optional[int] = None,
        epoch: Optional[int] = None,
        tenant: Optional[str] = None,
    ):
        """Generator: insert; blocks only when flushes are backed up.

        With admission control attached, a put is additionally gated on
        the slice's LSM write pressure (RocksDB-style stall/stop on
        flush backlog and level-0 runs), and one whose propagated
        ``deadline_ns`` passed is shed.  ``epoch`` is the client's
        routing-table stamp (see :meth:`route`); ``tenant`` labels the
        request for per-tenant metrics and admission accounting.
        """
        self._check_up()
        qos = self.qos
        if qos is not None:
            qos.try_admit("write", deadline_ns, tenant=tenant)
        try:
            self.puts.add()
            start = self.sim.now
            slice_ = self.route(key, epoch)
            slice_.writes.add()
            from repro.kv.common import sizeof_value

            with self._slice_cpu[slice_.slice_id].request() as cpu:
                yield cpu
                wait_ns = self.sim.now - start
                yield self.sim.timeout(
                    self._slow(self._cpu_cost_ns(sizeof_value(value)))
                )
            # A put must never be acknowledged out of a dead epoch: the
            # memtable it would land in no longer backs any acked state.
            self._check_up()
            if qos is not None:
                yield from qos.write_stall_gate(slice_, deadline_ns)
                self._check_up()
            # Cutover freeze: the migration's final tail transfer has
            # snapshotted (or is about to snapshot) this memtable, so no
            # new write may land in it.  The client retries; by then the
            # epoch bump has redirected it to the new owner.  This check
            # sits immediately before the (synchronous) memtable insert
            # so nothing can slip in between.
            if slice_.write_blocked:
                raise WrongEpochError(
                    f"slice {slice_.slice_id} is frozen for migration cutover"
                )
            if epoch is not None and slice_.epoch != epoch:
                raise WrongEpochError(
                    f"slice {slice_.slice_id} moved to epoch "
                    f"{slice_.epoch} while request queued"
                )
            frozen = slice_.lsm.put(key, value)
            slice_.bytes_written.add(sizeof_value(value))
            if frozen is not None:
                # Capture the epoch before blocking on a flush slot: if the
                # node crashes while we wait, the frozen patch was wiped with
                # the rest of volatile state and must not be registered.
                epoch = self._epoch
                slot = self._flush_slots[slice_.slice_id].request()
                yield slot
                self.sim.process(self._flush(slice_, frozen, slot, epoch))
            if self.obs is not None:
                self._note_request(
                    "put",
                    slice_,
                    start,
                    wait_ns,
                    tenant=tenant,
                    flush=frozen is not None,
                )
        finally:
            if qos is not None:
                qos.release("write")

    def handle_delete(
        self,
        key,
        deadline_ns: Optional[int] = None,
        epoch: Optional[int] = None,
        tenant: Optional[str] = None,
    ):
        """Generator: delete = put of a tombstone."""
        yield from self.handle_put(
            key,
            _tombstone(),
            deadline_ns=deadline_ns,
            epoch=epoch,
            tenant=tenant,
        )

    def scan_plan(self, lo, hi):
        """All (slice, run) pairs a range scan must read, synchronously
        computed from DRAM metadata."""
        self.scans.add()
        plan = []
        for slice_ in self.slices:
            if slice_.key_range.hi <= lo or slice_.key_range.lo >= hi:
                continue
            memory_items, runs = slice_.lsm.scan_plan(lo, hi)
            plan.append((slice_, memory_items, runs))
        return plan

    def handle_patch_read(
        self,
        handle,
        slice_: Optional[Slice] = None,
        deadline_ns: Optional[int] = None,
        tenant: Optional[str] = None,
    ):
        """Generator -> a whole patch (one 8 MB sequential read).

        When ``slice_`` is given, the request serializes on that
        slice's handler thread like any other request and counts
        against the ``scan`` admission class (attributed to ``tenant``
        when one is named).
        """
        qos = self.qos if slice_ is not None else None
        if slice_ is not None:
            self._check_up()
            if qos is not None:
                qos.try_admit("scan", deadline_ns, tenant=tenant)
        try:
            if slice_ is not None:
                with self._slice_cpu[slice_.slice_id].request() as cpu:
                    yield cpu
                    yield self.sim.timeout(self._slow(self.per_request_cpu_ns))
            else:
                yield self.sim.timeout(self._slow(self.per_request_cpu_ns))
            patch = yield from self.storage.read_patch(handle)
            return patch
        finally:
            if qos is not None:
                qos.release("scan")

    # -- background work ---------------------------------------------------------------
    def _flush(self, slice_: Slice, frozen, slot, epoch: Optional[int] = None):
        # Capture the slot resource now: if the slice migrates away while
        # this flush is in flight, release must hit the same resource the
        # slot was requested from.
        slots = self._flush_slots[slice_.slice_id]
        if epoch is None:
            epoch = self._epoch
        try:
            handle = yield from self.storage.store_patch(frozen.patch)
            if epoch != self._epoch:
                # The server crashed while this patch was in flight; its
                # records are still (durably) in the WAL, so the stored
                # copy is an orphan -- free it instead of registering.
                yield from self.storage.free_patch(handle)
                return
            slice_.lsm.register_patch(frozen, handle)
            yield self._compaction_pokes[slice_.slice_id].put(True)
        finally:
            slots.release(slot)

    def _compactor(self, slice_: Slice):
        """Per-slice compaction loop: merge whenever the policy asks."""
        pokes = self._compaction_pokes[slice_.slice_id]
        while True:
            yield pokes.get()
            if slice_ not in self.slices:
                return  # slice migrated away or was merged; stand down
            while True:
                if not self.up or slice_.migration_hold:
                    # Stand down while crashed (restart() pokes us awake)
                    # or while the slice is a migration source (the
                    # transfer needs a stable run inventory; the
                    # controller pokes us on release).
                    break
                task = slice_.lsm.pick_compaction()
                if task is None:
                    break
                slice_.compaction_active = True
                try:
                    patches = []
                    for handle in slice_.lsm.run_handles(task):
                        patch = yield from self.storage.read_patch(handle)
                        self.compaction_read_meter.record(
                            self.sim.now, patch.nbytes
                        )
                        patches.append(patch)
                    merged = slice_.lsm.merge_for_task(task, patches)
                    parts = split_patch(
                        merged, self.storage.patch_capacity_bytes
                    )
                    # One batched store: the output parts land on
                    # distinct channels concurrently instead of
                    # serializing the merge tail.
                    new_handles = yield from self.storage.store_patches(parts)
                    for part in parts:
                        self.compaction_write_meter.record(
                            self.sim.now, part.nbytes
                        )
                    freed = slice_.lsm.apply_compaction(
                        task, parts, new_handles
                    )
                    for handle in freed:
                        yield from self.storage.free_patch(handle)
                except TransientFault:
                    # e.g. an uncorrectable page read under the merge.
                    # The LSM has not been touched (apply_compaction is
                    # the only mutation), so abandon this attempt and
                    # stand down until the next flush pokes us.
                    self.compaction_aborts.add()
                    break
                finally:
                    slice_.compaction_active = False

    # -- preloading -------------------------------------------------------------------
    def preload(self, slice_: Slice, keys, value_bytes: int, compact: bool = True):
        """Functionally populate a slice (no simulated time) so read
        experiments start from a realistic on-device state."""
        lsm = slice_.lsm
        for key in keys:
            slice_.require_owns(key)
            frozen = lsm.put(key, PlaceholderValue(value_bytes))
            if frozen is not None:
                handle = self.storage.functional_store(frozen.patch)
                lsm.register_patch(frozen, handle)
        frozen = lsm.flush()
        if frozen is not None:
            handle = self.storage.functional_store(frozen.patch)
            lsm.register_patch(frozen, handle)
        if compact:
            while True:
                task = lsm.pick_compaction()
                if task is None:
                    break
                patches = [
                    self.storage.functional_load(h)
                    for h in lsm.run_handles(task)
                ]
                merged = lsm.merge_for_task(task, patches)
                parts = split_patch(merged, self.storage.patch_capacity_bytes)
                new_handles = [
                    self.storage.functional_store(part) for part in parts
                ]
                for handle in lsm.apply_compaction(task, parts, new_handles):
                    self.storage.functional_free(handle)


def _tombstone():
    from repro.kv.common import TOMBSTONE

    return TOMBSTONE


def build_storage_server(
    sim: Simulator,
    slices: List[Slice],
    device_kind: str = "sdf",
    capacity_scale: float = 0.05,
    n_channels: int = 44,
    spec=None,
    device_params: Optional[dict] = None,
    **server_kwargs,
):
    """A storage server over any registered device kind.

    The one-door cluster builder for the device zoo: ``device_kind``
    selects the backend (see ``repro.devices.device_kinds()``), the
    matching node-storage adapter is chosen automatically, and
    ``device_params`` passes backend-specific knobs (``cmt_pages``,
    ``log_blocks_per_channel``, ...) straight to ``build_device``.

    SDF-backed servers expose the built system as ``server.system``;
    every other kind exposes the device as ``server.device``.
    """
    from repro.devices.catalog import build_device

    params = dict(device_params or {})
    if device_kind == "sdf":
        from repro.core.api import build_sdf_system

        system = build_sdf_system(
            capacity_scale=capacity_scale,
            n_channels=n_channels,
            sim=sim,
            **params,
        )
        storage = SDFNodeStorage(system.block_layer)
        server = StorageServer(sim, storage, slices, **server_kwargs)
        server.system = system
        return server
    if device_kind == "zoned":
        device = build_device(
            "zoned",
            sim,
            capacity_scale=capacity_scale,
            n_channels=n_channels,
            **params,
        )
        storage = ZonedNodeStorage(device)
    else:
        # The conventional family (page-mapped, DFTL, hybrid, MQ) all
        # speak the LPN extent interface.
        from repro.devices.catalog import HUAWEI_GEN3_SPEC

        base_spec = spec if spec is not None else HUAWEI_GEN3_SPEC
        if n_channels != base_spec.n_channels:
            from dataclasses import replace

            base_spec = replace(
                base_spec,
                n_channels=n_channels,
                parity_group_size=min(
                    base_spec.parity_group_size, max(2, n_channels)
                ),
            )
        device = build_device(
            device_kind,
            sim,
            spec=base_spec,
            capacity_scale=capacity_scale,
            store_data=True,  # pages hold patch references for value reads
            **params,
        )
        storage = ConventionalNodeStorage(device)
    server = StorageServer(sim, storage, slices, **server_kwargs)
    server.device = device
    return server


def build_sdf_server(
    sim: Simulator,
    slices: List[Slice],
    capacity_scale: float = 0.05,
    n_channels: int = 44,
    **server_kwargs,
):
    """A storage server over a freshly built SDF system."""
    return build_storage_server(
        sim,
        slices,
        device_kind="sdf",
        capacity_scale=capacity_scale,
        n_channels=n_channels,
        **server_kwargs,
    )


def build_conventional_server(
    sim: Simulator,
    slices: List[Slice],
    spec=None,
    capacity_scale: float = 0.05,
    **server_kwargs,
):
    """A storage server over a commodity SSD baseline."""
    from repro.devices.catalog import HUAWEI_GEN3_SPEC

    spec = spec if spec is not None else HUAWEI_GEN3_SPEC
    return build_storage_server(
        sim,
        slices,
        device_kind="conventional",
        capacity_scale=capacity_scale,
        n_channels=spec.n_channels,
        spec=spec,
        **server_kwargs,
    )

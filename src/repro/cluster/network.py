"""Datacenter network model.

Table 2 / S3.1: the server connects to the switch with two 10 Gbps
NICs, clients with one each.  We model each NIC as independent tx/rx
lanes with chunked transfers (so concurrent flows share fairly) plus a
small per-message switch latency.
"""

from __future__ import annotations

from repro.faults.errors import TransientFault
from repro.faults.injector import DELAY, DROP, NULL_INJECTOR
from repro.sim import Resource, Simulator
from repro.sim.units import KIB, transfer_ns

#: 10 Gbps Ethernet ~ 1250 MB/s line rate; ~1180 MB/s effective after
#: framing overheads.
TEN_GBE_MB_S = 1180.0


class MessageDroppedError(TransientFault):
    """A network message was lost in the fabric; the sender must retry."""


class NetworkPartitionedError(MessageDroppedError):
    """The link between two endpoints is cut by an active partition.

    Subclasses :class:`MessageDroppedError` so every existing retry /
    failover path treats a partitioned link exactly like sustained
    message loss -- which is all a partition *is* from the sender's
    point of view.
    """


class Nic:
    """One network interface: full-duplex tx/rx at a fixed rate.

    ``lanes`` models NIC bonding (the server has two 10 GbE ports).
    """

    def __init__(
        self,
        sim: Simulator,
        mb_per_s: float = TEN_GBE_MB_S,
        lanes: int = 1,
        chunk_bytes: int = 64 * KIB,
        name: str = "nic",
    ):
        if mb_per_s <= 0:
            raise ValueError("NIC rate must be positive")
        if lanes < 1:
            raise ValueError("need at least one lane")
        self.sim = sim
        self.mb_per_s = mb_per_s
        self.chunk_bytes = chunk_bytes
        self.name = name
        self.tx = Resource(sim, capacity=lanes)
        self.rx = Resource(sim, capacity=lanes)

    def _hold(self, lane: Resource, nbytes: int):
        remaining = max(nbytes, 1)
        while remaining > 0:
            chunk = min(remaining, self.chunk_bytes)
            with lane.request() as hold:
                yield hold
                yield self.sim.timeout(transfer_ns(chunk, self.mb_per_s))
            remaining -= chunk

    def transmit(self, nbytes: int):
        """Generator: occupy the tx lane for nbytes."""
        yield from self._hold(self.tx, nbytes)

    def receive(self, nbytes: int):
        """Generator: occupy the rx lane for nbytes."""
        yield from self._hold(self.rx, nbytes)


class Network:
    """A single switch connecting NICs with fixed fabric latency."""

    def __init__(self, sim: Simulator, latency_ns: int = 50_000):
        if latency_ns < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.latency_ns = latency_ns
        self.messages = 0
        self.bytes_moved = 0
        self.drops = 0
        self.partition_drops = 0
        #: Fault-injection handle (``drop``/``delay``);
        #: :data:`~repro.faults.injector.NULL_INJECTOR` unless wired.
        self.faults = NULL_INJECTOR
        #: Active link cuts as (src NIC name, dst NIC name) -> cut count.
        #: Counted (not boolean) so overlapping scheduled partitions
        #: compose: a link heals when *every* cut covering it ends.
        self._cuts: dict = {}

    # -- partitions --------------------------------------------------------------------
    @staticmethod
    def _endpoint_names(group) -> tuple:
        """Normalise one side of a partition to a tuple of NIC names.

        Accepts a NIC name, an object with a ``nic`` (server/client) or
        ``name`` attribute, or an iterable of those -- so callers can cut
        single links or whole racks with one call.
        """
        if isinstance(group, str):
            return (group,)
        if hasattr(group, "nic"):
            return (group.nic.name,)
        if hasattr(group, "name"):
            return (group.name,)
        names = []
        for member in group:
            names.extend(Network._endpoint_names(member))
        return tuple(names)

    def _cut_pairs(self, a, b, symmetric: bool):
        pairs = []
        for src in self._endpoint_names(a):
            for dst in self._endpoint_names(b):
                if src == dst:
                    continue
                pairs.append((src, dst))
                if symmetric:
                    pairs.append((dst, src))
        return pairs

    def begin_partition(self, a, b, symmetric: bool = True) -> None:
        """Cut the links between endpoint groups ``a`` and ``b``.

        While cut, :meth:`send` between the groups raises
        :class:`NetworkPartitionedError` immediately (no bandwidth is
        consumed -- the frames die in the fabric).  ``symmetric=False``
        cuts only the ``a`` -> ``b`` direction, modelling asymmetric
        routing failures where acks still flow.
        """
        for pair in self._cut_pairs(a, b, symmetric):
            self._cuts[pair] = self._cuts.get(pair, 0) + 1

    def end_partition(self, a, b, symmetric: bool = True) -> None:
        """Heal a cut previously made by :meth:`begin_partition` with
        the same endpoints and direction."""
        for pair in self._cut_pairs(a, b, symmetric):
            count = self._cuts.get(pair, 0) - 1
            if count > 0:
                self._cuts[pair] = count
            else:
                self._cuts.pop(pair, None)

    def partitioned(self, src: "Nic", dst: "Nic") -> bool:
        """True when ``src`` -> ``dst`` traffic is currently cut."""
        return bool(self._cuts) and (src.name, dst.name) in self._cuts

    def send(self, src: Nic, dst: Nic, nbytes: int):
        """Generator: move one message from ``src`` to ``dst``.

        Each chunk occupies the source tx lane and the destination rx
        lane simultaneously (cut-through switching): a single flow runs
        at line rate and concurrent flows share the contended lane.

        Raises :class:`MessageDroppedError` when the fault plane drops
        the message (before any bandwidth is consumed, as a switch
        dropping a frame at ingress would).
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        if self._cuts and (src.name, dst.name) in self._cuts:
            self.partition_drops += 1
            raise NetworkPartitionedError(
                f"link {src.name} -> {dst.name} is partitioned"
            )
        if self.faults.fires(DROP, src=src.name, dst=dst.name, nbytes=nbytes) is not None:
            self.drops += 1
            raise MessageDroppedError(
                f"message {src.name} -> {dst.name} ({nbytes} B) dropped"
            )
        extra_ns = self.faults.delay_ns(DELAY, src=src.name, dst=dst.name, nbytes=nbytes)
        yield self.sim.timeout(self.latency_ns + extra_ns)
        remaining = max(nbytes, 1)
        while remaining > 0:
            chunk = min(remaining, min(src.chunk_bytes, dst.chunk_bytes))
            with src.tx.request() as tx_hold:
                yield tx_hold
                with dst.rx.request() as rx_hold:
                    yield rx_hold
                    rate = min(src.mb_per_s, dst.mb_per_s)
                    yield self.sim.timeout(transfer_ns(chunk, rate))
            remaining -= chunk
        self.messages += 1
        self.bytes_moved += nbytes

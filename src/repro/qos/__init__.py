"""repro.qos -- overload protection for web-scale traffic (ROADMAP north
star; RackBlox/LFTL in PAPERS.md make the case that overload behaviour
must be engineered per layer, not inherited).

The plane bounds queues and sheds doomed work at every level of the
stack, each mechanism individually opt-in through a :class:`QosPlan`:

* **channel backpressure** -- per-channel admitted-op bounds in
  :class:`~repro.channel.engine.ChannelEngine` and per-channel write
  slots in :class:`~repro.core.block_layer.UserSpaceBlockLayer`;
* **write stalls** -- RocksDB-style stall/stop thresholds on LSM flush
  backlog and level-0 run count, gated in the server's put path;
* **admission control** -- per-class (read/write/scan) inflight limits
  with deadline-aware shedding at the storage server;
* **circuit breaking + deadline budgets** -- client-side per-node
  breakers and a total retry budget, so retries stop amplifying
  brownouts.

Same discipline as :mod:`repro.faults`: an unconfigured run is
byte-identical to a run with no plan attached (no attribute changes, no
metric registration, no extra events).
"""

from repro.qos.admission import (
    REQUEST_CLASSES,
    AdmissionController,
    DeadlineExceededError,
    RequestSheddedError,
)
from repro.qos.breaker import BreakerState, CircuitBreaker, CircuitOpenError
from repro.qos.config import (
    AdmissionConfig,
    BreakerConfig,
    ChannelQosConfig,
    MigrationConfig,
    QosPlan,
    WriteStallConfig,
)
from repro.qos.limits import BlockWriteLimiter, ChannelQosState
from repro.qos.wire import (
    attach_block_layer_qos,
    attach_device_qos,
    attach_server_qos,
    attach_system_qos,
)

__all__ = [
    "REQUEST_CLASSES",
    "AdmissionConfig",
    "AdmissionController",
    "BlockWriteLimiter",
    "BreakerConfig",
    "BreakerState",
    "ChannelQosConfig",
    "ChannelQosState",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "MigrationConfig",
    "QosPlan",
    "RequestSheddedError",
    "WriteStallConfig",
    "attach_block_layer_qos",
    "attach_device_qos",
    "attach_server_qos",
    "attach_system_qos",
]

"""Per-class admission control and write-stall gating for storage nodes.

One :class:`AdmissionController` guards one :class:`~repro.cluster.node.
StorageServer`.  Requests are classed ``read``/``write``/``scan``; a
class over its inflight limit sheds new arrivals instead of queueing
them, and a request whose propagated deadline already passed is rejected
rather than served.  Shedding raises a
:class:`~repro.faults.errors.TransientFault` subclass, so the existing
retry/failover machinery treats a shed exactly like a dropped message:
back off and try again (or elsewhere) -- which is the point of admission
control: convert unbounded queueing into fast, retriable rejection.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.faults.errors import TransientFault
from repro.qos.config import AdmissionConfig, WriteStallConfig
from repro.sim.stats import Counter

#: The request classes an :class:`AdmissionController` tracks.
REQUEST_CLASSES = ("read", "write", "scan")


class RequestSheddedError(TransientFault):
    """Admission control rejected a request (class queue at its limit)."""


class DeadlineExceededError(TransientFault):
    """A request's deadline passed before it could be served."""


class AdmissionController:
    """Admission, deadline shedding and write-stall gating for one node."""

    def __init__(
        self,
        sim,
        config: Optional[AdmissionConfig] = None,
        stall: Optional[WriteStallConfig] = None,
        name: str = "server",
    ):
        self.sim = sim
        self.config = config if config is not None else AdmissionConfig()
        self.stall = stall
        self.name = name
        self.inflight = {cls: 0 for cls in REQUEST_CLASSES}
        self.shed = {
            cls: Counter(f"qos.{name}.shed_{cls}s") for cls in REQUEST_CLASSES
        }
        self.deadline_sheds = Counter(f"qos.{name}.shed_deadline")
        self.write_stalls = Counter(f"qos.{name}.write_stalls")
        self.write_stops = Counter(f"qos.{name}.write_stops")
        #: Per-tenant shed counters, created on first use for requests
        #: that carry a tenant label (``qos.{name}.tenant.{t}.{what}``).
        self._tenant_sheds: Dict[Tuple[str, str], Counter] = {}
        self.obs = None

    # -- observability ---------------------------------------------------------------
    def bind_obs(self, obs) -> None:
        """Register this controller's counters and inflight gauges."""
        self.obs = obs
        registry = obs.metrics
        for counter in (*self.shed.values(), self.deadline_sheds,
                        self.write_stalls, self.write_stops,
                        *self._tenant_sheds.values()):
            registry.register_counter(counter.name, counter)
        for cls in REQUEST_CLASSES:
            registry.register_callback(
                f"qos.{self.name}.inflight_{cls}s",
                lambda _now, c=cls: self.inflight[c],
            )

    def _note_depth(self, request_class: str) -> None:
        if self.obs is not None:
            self.obs.metrics.time_weighted(
                f"qos.{self.name}.depth_{request_class}s"
            ).update(self.sim.now, self.inflight[request_class])

    def _tenant_shed(self, tenant: str, what: str) -> Counter:
        """The lazily created per-tenant shed counter."""
        key = (tenant, what)
        counter = self._tenant_sheds.get(key)
        if counter is None:
            counter = Counter(f"qos.{self.name}.tenant.{tenant}.{what}")
            self._tenant_sheds[key] = counter
            if self.obs is not None:
                self.obs.metrics.register_counter(counter.name, counter)
        return counter

    def _record_miss(
        self, lateness_ns: int, tenant: Optional[str] = None
    ) -> None:
        self.deadline_sheds.add()
        if tenant is not None:
            self._tenant_shed(tenant, "shed_deadline").add()
        if self.obs is not None:
            self.obs.metrics.histogram(
                f"qos.{self.name}.deadline_miss_ns"
            ).record(lateness_ns)

    # -- admission -------------------------------------------------------------------
    def try_admit(
        self,
        request_class: str,
        deadline_ns: Optional[int],
        tenant: Optional[str] = None,
    ) -> None:
        """Admit one request or raise (shed).  Synchronous: no sim time.

        The caller must pair every successful admit with a
        :meth:`release` (``try``/``finally``).  A ``tenant`` label
        splits shed accounting by tenant (metrics only: limits stay
        per-class, so one tenant's burst sheds whoever arrives next --
        the fairness question the per-tenant counters make visible).
        """
        now = self.sim.now
        if (
            self.config.shed_expired
            and deadline_ns is not None
            and now > deadline_ns
        ):
            self._record_miss(now - deadline_ns, tenant)
            raise DeadlineExceededError(
                f"{request_class} deadline passed {now - deadline_ns} ns ago"
            )
        limit = self.config.limit(request_class)
        if limit is not None and self.inflight[request_class] >= limit:
            self.shed[request_class].add()
            if tenant is not None:
                self._tenant_shed(tenant, f"shed_{request_class}s").add()
            raise RequestSheddedError(
                f"{request_class} queue at its limit ({limit})"
            )
        self.inflight[request_class] += 1
        self._note_depth(request_class)

    def release(self, request_class: str) -> None:
        """The paired exit of :meth:`try_admit`."""
        self.inflight[request_class] -= 1
        self._note_depth(request_class)

    def expired(
        self, deadline_ns: Optional[int], tenant: Optional[str] = None
    ) -> bool:
        """Did this deadline pass while the request queued?  (Counts the
        miss when it did; the caller sheds.)"""
        if (
            not self.config.shed_expired
            or deadline_ns is None
            or self.sim.now <= deadline_ns
        ):
            return False
        self._record_miss(self.sim.now - deadline_ns, tenant)
        return True

    # -- write stalls -----------------------------------------------------------------
    def write_stall_gate(self, slice_, deadline_ns: Optional[int] = None):
        """Generator: delay (stall) or block (stop) one put according to
        the slice's LSM pressure.  No-op when no stall config is set or
        the pressure is ``ok``.  A stopped put whose deadline passes
        while blocked is shed rather than left to wait forever.
        """
        cfg = self.stall
        if cfg is None:
            return
        pressure = slice_.write_pressure(cfg)
        if pressure == "ok":
            return
        start = self.sim.now
        while pressure == "stop":
            if self.expired(deadline_ns):
                raise DeadlineExceededError(
                    "write deadline passed while stopped on flush backlog"
                )
            self.write_stops.add()
            yield self.sim.timeout(cfg.stall_delay_ns)
            pressure = slice_.write_pressure(cfg)
        if pressure == "stall":
            self.write_stalls.add()
            yield self.sim.timeout(cfg.stall_delay_ns)
        if self.obs is not None:
            self.obs.metrics.histogram(
                f"qos.{self.name}.write_stall_ns"
            ).record(self.sim.now - start)

    def __repr__(self):
        return (
            f"AdmissionController({self.name!r}, "
            f"inflight={dict(self.inflight)})"
        )

"""A per-node circuit breaker for cluster clients.

Retrying clients amplify brownouts: a node serving at 10x latency makes
every client time out, retry, and double the offered load on the node
that could least afford it.  The breaker converts that feedback loop
into fast local failure:

* **closed** -- requests flow; ``failure_threshold`` *consecutive*
  failures trip the breaker open.
* **open** -- requests are rejected locally (no load reaches the node)
  until ``reset_ns`` of simulated time has passed.
* **half-open** -- after the cooldown one probe stream is allowed;
  ``half_open_successes`` consecutive successes close the breaker,
  any failure re-opens it for another full cooldown.

Deterministic by construction: state depends only on the sequence of
``allow``/``record_*`` calls and the simulated clock.
"""

from __future__ import annotations

from enum import Enum

from repro.faults.errors import TransientFault
from repro.sim.stats import Counter


class CircuitOpenError(TransientFault):
    """The breaker rejected a request locally (node presumed unhealthy)."""


class BreakerState(Enum):
    """The classic three-state breaker automaton."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One client's health automaton for one remote node."""

    def __init__(
        self,
        sim,
        failure_threshold: int = 5,
        reset_ns: int = 100_000_000,
        half_open_successes: int = 1,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_ns < 1:
            raise ValueError("reset_ns must be >= 1")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_ns = reset_ns
        self.half_open_successes = half_open_successes
        self.name = name
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0
        #: (at_ns, from_state, to_state) tuples, in order.
        self.transitions = []
        self.opens = Counter(f"qos.{name}.opens")
        self.closes = Counter(f"qos.{name}.closes")
        self.rejections = Counter(f"qos.{name}.rejections")
        self.obs = None

    # -- observability ---------------------------------------------------------------
    def bind_obs(self, obs) -> None:
        """Register open/close/rejection counters and a state gauge."""
        self.obs = obs
        registry = obs.metrics
        for counter in (self.opens, self.closes, self.rejections):
            registry.register_counter(counter.name, counter)
        # Snapshot-friendly numeric encoding of the automaton state.
        order = {
            BreakerState.CLOSED: 0,
            BreakerState.OPEN: 1,
            BreakerState.HALF_OPEN: 2,
        }
        registry.register_callback(
            f"qos.{self.name}.state", lambda _now: order[self.state]
        )

    def _transition(self, to: BreakerState) -> None:
        now = self.sim.now
        self.transitions.append((now, self.state, to))
        if self.obs is not None:
            self.obs.metrics.counter(
                f"qos.{self.name}.transitions"
            ).add(1)
            if self.obs.trace.enabled:
                self.obs.trace.instant(
                    f"qos/{self.name}",
                    f"{self.state.value}->{to.value}",
                    now,
                )
        self.state = to

    # -- the automaton ----------------------------------------------------------------
    def allow(self) -> bool:
        """May a request be sent to the node right now?

        Rejections are counted; an open breaker whose cooldown elapsed
        moves to half-open and admits the probe.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.sim.now - self._opened_at >= self.reset_ns:
                self._probe_successes = 0
                self._transition(BreakerState.HALF_OPEN)
                return True
            self.rejections.add()
            return False
        return True  # half-open: the probe stream flows

    def record_success(self) -> None:
        """A request to the node completed in time."""
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self.closes.add()
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A request to the node failed or timed out."""
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = self.sim.now
        self.opens.add()
        self._transition(BreakerState.OPEN)

    def __repr__(self):
        return (
            f"CircuitBreaker({self.name!r}, state={self.state.value}, "
            f"opens={self.opens.value})"
        )

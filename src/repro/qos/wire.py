"""Attach a :class:`~repro.qos.config.QosPlan` to built systems.

Mirrors :mod:`repro.faults.wire`: systems are constructed without
overload protection and wired afterwards.  Each helper is conditional on
the matching sub-config -- an empty plan wires *nothing* (no attributes
changed, no resources created), which is what the QoS no-drift test
pins down.

Naming (``prefix``/``name`` distinguish multiple devices/servers under
one plan): channel limiters register metrics as ``qos.{prefix}ch<N>``,
the block-layer write limiter as ``qos.{prefix}blk``, and a server's
admission controller as ``qos.{name}``.
"""

from __future__ import annotations

from repro.qos.admission import AdmissionController
from repro.qos.config import QosPlan
from repro.qos.limits import BlockWriteLimiter, ChannelQosState


def attach_device_qos(plan: QosPlan, device, prefix: str = "") -> None:
    """Bound each channel engine's admitted queue depth."""
    cfg = plan.channel
    if cfg is None or cfg.max_inflight_ops is None:
        return
    for engine in device.engines:
        state = ChannelQosState(
            device.sim, engine.channel, cfg.max_inflight_ops, name=prefix
        )
        engine.qos = state
        plan.register(state)


def attach_block_layer_qos(plan: QosPlan, layer, prefix: str = "") -> None:
    """Bound concurrent block writes per channel at the block layer."""
    cfg = plan.channel
    if cfg is None or cfg.max_inflight_writes is None:
        return
    limiter = BlockWriteLimiter(
        layer.sim,
        layer.device.n_channels,
        cfg.max_inflight_writes,
        name=prefix,
    )
    layer.qos = limiter
    plan.register(limiter)


def _wire_system_qos(plan: QosPlan, system, prefix: str = "") -> None:
    """Wire an :class:`~repro.core.api.SDFSystem` (device + block layer)."""
    attach_device_qos(plan, system.device, prefix=prefix)
    attach_block_layer_qos(plan, system.block_layer, prefix=prefix)


def attach_system_qos(plan: QosPlan, system, prefix: str = "") -> None:
    """Deprecated: use ``system.attach(plan, prefix=...)`` or
    ``build_sdf_system(qos=...)`` instead."""
    import warnings

    warnings.warn(
        "attach_system_qos() is deprecated; use SDFSystem.attach(plan) "
        "or build_sdf_system(qos=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    _wire_system_qos(plan, system, prefix=prefix)


def attach_server_qos(plan: QosPlan, server, name: str = "server") -> None:
    """Wire a :class:`~repro.cluster.node.StorageServer` and the device
    underneath it (device metrics prefixed ``{name}.``).

    The server gains an :class:`AdmissionController` when the plan
    configures admission limits or write stalls; the device layers gain
    their bounds when the plan configures channel limits.
    """
    stall = plan.write_stall
    if stall is not None and stall.empty:
        stall = None
    if plan.admission is not None or stall is not None:
        controller = AdmissionController(
            server.sim, plan.admission, stall, name=name
        )
        server.qos = controller
        plan.register(controller)
    storage = server.storage
    if hasattr(storage, "block_layer"):  # SDFNodeStorage
        attach_device_qos(plan, storage.block_layer.device, prefix=f"{name}.")
        attach_block_layer_qos(plan, storage.block_layer, prefix=f"{name}.")
    elif hasattr(storage, "device"):  # ConventionalNodeStorage
        attach_device_qos(plan, storage.device, prefix=f"{name}.")

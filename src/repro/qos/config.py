"""The :class:`QosPlan`: one declarative description of every overload
protection a run opts into.

Follows the same attachment discipline as :class:`repro.faults.plan.FaultPlan`:
a plan is built up front, wired into an already-constructed system with
the helpers in :mod:`repro.qos.wire`, and consulted by the layers behind
no-op-default hooks.  The contract the test tier leans on:

* **No drift** -- an *empty* plan (every sub-config ``None``) wires
  nothing: no layer attribute changes, no metrics registered, no extra
  events, so a run with an empty plan attached is byte-identical to a
  run with no plan at all (``tests/qos/test_no_drift.py``).
* **Opt-in per protection** -- each sub-config enables exactly one
  mechanism, so a run can bound channels without admission control, or
  stall writers without a circuit breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.units import MS


@dataclass(frozen=True)
class ChannelQosConfig:
    """Bounds on per-channel work in flight.

    ``max_inflight_ops`` caps the flash ops admitted to one channel
    engine (queued on a plane/bus plus in service); excess ops wait
    *outside* the channel, exerting backpressure on the block layer.
    ``max_inflight_writes`` caps concurrent 8 MB block writes the block
    layer itself issues per channel, so a write burst queues at the
    block layer (where placement can still steer around it) instead of
    deep inside a channel.  ``None`` disables that bound.
    """

    max_inflight_ops: Optional[int] = None
    max_inflight_writes: Optional[int] = None

    def __post_init__(self):
        for field in ("max_inflight_ops", "max_inflight_writes"):
            value = getattr(self, field)
            if value is not None and value < 1:
                raise ValueError(f"{field} must be >= 1 or None, got {value}")

    @property
    def empty(self) -> bool:
        return self.max_inflight_ops is None and self.max_inflight_writes is None


@dataclass(frozen=True)
class WriteStallConfig:
    """RocksDB-style write stalls keyed on LSM flush backlog and the
    level-0 run count.

    ``stall_*`` thresholds slow each put down by ``stall_delay_ns``
    (soft throttling); ``stop_*`` thresholds block puts entirely until
    the pressure drops below the stop line (polled every
    ``stall_delay_ns``).  A threshold of ``None`` never triggers.  The
    pressure signals are :attr:`repro.kv.lsm.LSMTree.n_pending` (frozen
    patches awaiting storage -- the flush backlog) and the number of
    level-0 runs (patches not yet merged down).
    """

    stall_pending_patches: Optional[int] = None
    stop_pending_patches: Optional[int] = None
    stall_l0_runs: Optional[int] = None
    stop_l0_runs: Optional[int] = None
    stall_delay_ns: int = 2 * MS

    def __post_init__(self):
        if self.stall_delay_ns < 1:
            raise ValueError("stall_delay_ns must be >= 1")
        for field in (
            "stall_pending_patches",
            "stop_pending_patches",
            "stall_l0_runs",
            "stop_l0_runs",
        ):
            value = getattr(self, field)
            if value is not None and value < 1:
                raise ValueError(f"{field} must be >= 1 or None, got {value}")

    @property
    def empty(self) -> bool:
        return (
            self.stall_pending_patches is None
            and self.stop_pending_patches is None
            and self.stall_l0_runs is None
            and self.stop_l0_runs is None
        )


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-class admission limits for a storage server.

    A request class (``read``/``write``/``scan``) with more than its
    limit of requests already inside the server is *shed* -- rejected
    immediately with :class:`~repro.qos.admission.RequestSheddedError`
    instead of joining an ever-growing queue.  ``None`` means unlimited.
    ``shed_expired`` additionally rejects any request whose propagated
    deadline has already passed (it cannot possibly be served in time,
    so serving it only steals capacity from requests that still can).
    """

    max_reads: Optional[int] = None
    max_writes: Optional[int] = None
    max_scans: Optional[int] = None
    shed_expired: bool = True

    def __post_init__(self):
        for field in ("max_reads", "max_writes", "max_scans"):
            value = getattr(self, field)
            if value is not None and value < 1:
                raise ValueError(f"{field} must be >= 1 or None, got {value}")

    def limit(self, request_class: str) -> Optional[int]:
        """The inflight limit for one request class."""
        return {
            "read": self.max_reads,
            "write": self.max_writes,
            "scan": self.max_scans,
        }[request_class]


@dataclass(frozen=True)
class MigrationConfig:
    """Budget for the control plane's online slice migrations.

    ``copy_mb_per_s`` caps the aggregate network rate of snapshot /
    catch-up transfers (the controller paces itself below it), keeping
    rebalancing from starving foreground traffic.  Migration's source
    reads additionally ride the ``scan`` admission class of
    :class:`AdmissionConfig`, so a loaded server sheds migration reads
    before client reads.  ``max_concurrent`` bounds simultaneous slice
    migrations.  ``None`` disables a bound.
    """

    copy_mb_per_s: Optional[float] = None
    max_concurrent: Optional[int] = None

    def __post_init__(self):
        if self.copy_mb_per_s is not None and self.copy_mb_per_s <= 0:
            raise ValueError(
                f"copy_mb_per_s must be > 0 or None, got {self.copy_mb_per_s}"
            )
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1 or None, got {self.max_concurrent}"
            )

    @property
    def empty(self) -> bool:
        return self.copy_mb_per_s is None and self.max_concurrent is None


@dataclass(frozen=True)
class BreakerConfig:
    """Client-side circuit-breaker tuning (see
    :class:`repro.qos.breaker.CircuitBreaker`)."""

    failure_threshold: int = 5
    reset_ns: int = 100 * MS
    half_open_successes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_ns < 1:
            raise ValueError("reset_ns must be >= 1")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")


class QosPlan:
    """A bundle of overload protections to wire into one run."""

    def __init__(
        self,
        channel: Optional[ChannelQosConfig] = None,
        write_stall: Optional[WriteStallConfig] = None,
        admission: Optional[AdmissionConfig] = None,
        breaker: Optional[BreakerConfig] = None,
        migration: Optional[MigrationConfig] = None,
    ):
        self.channel = channel
        self.write_stall = write_stall
        self.admission = admission
        self.breaker = breaker
        #: Consumed by :class:`repro.cluster.control.ClusterController`,
        #: not by the wiring helpers (it budgets the controller's own
        #: transfers rather than instrumenting a layer).
        self.migration = migration
        self.obs = None
        #: Every live QoS state object created by the wiring helpers
        #: (channel limiters, admission controllers, breakers), so a
        #: late ``attach_obs`` still reaches all of them.
        self._states: List = []

    @property
    def empty(self) -> bool:
        """True when attaching this plan wires nothing anywhere."""
        return (
            (self.channel is None or self.channel.empty)
            and (self.write_stall is None or self.write_stall.empty)
            and self.admission is None
            and self.breaker is None
            and (self.migration is None or self.migration.empty)
        )

    def register(self, state) -> None:
        """Adopt a live QoS state object (binds obs when attached)."""
        self._states.append(state)
        if self.obs is not None:
            state.bind_obs(self.obs)

    def attach_obs(self, obs) -> None:
        """Mirror shed/stall/throttle/breaker activity into ``repro.obs``."""
        self.obs = obs
        for state in self._states:
            state.bind_obs(obs)

    def make_breaker(self, sim, name: str = "breaker"):
        """A :class:`~repro.qos.breaker.CircuitBreaker` from this plan's
        breaker config (``None`` when the plan configures none)."""
        if self.breaker is None:
            return None
        from repro.qos.breaker import CircuitBreaker

        breaker = CircuitBreaker(
            sim,
            failure_threshold=self.breaker.failure_threshold,
            reset_ns=self.breaker.reset_ns,
            half_open_successes=self.breaker.half_open_successes,
            name=name,
        )
        self.register(breaker)
        return breaker

    def __repr__(self):
        parts = []
        for field in (
            "channel", "write_stall", "admission", "breaker", "migration"
        ):
            if getattr(self, field) is not None:
                parts.append(field)
        return f"QosPlan({', '.join(parts) if parts else 'empty'})"

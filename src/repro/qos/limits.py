"""Bounded-queue limiters for the device layers.

:class:`ChannelQosState` caps the flash ops admitted to one
:class:`~repro.channel.engine.ChannelEngine`; ops beyond the bound wait
*before* contending for the channel's planes and bus, so the queue the
hardware sees stays shallow and the wait surfaces as backpressure to
whoever issued the op (the block layer, and transitively the LSM flush
path).  :class:`BlockWriteLimiter` does the same one level up for whole
8 MB block writes.

Both are plain resource wrappers: deterministic, FIFO, and invisible
(no extra events) until an op actually has to wait.
"""

from __future__ import annotations

from collections import deque

from repro.sim import Resource
from repro.sim.stats import Counter


class ChannelQosState:
    """Admission slots for one channel engine."""

    def __init__(self, sim, channel: int, max_inflight: int, name: str = ""):
        prefix = f"qos.{name}ch{channel}"
        self.sim = sim
        self.channel = channel
        self.max_inflight = max_inflight
        self.slots = Resource(sim, capacity=max_inflight)
        self.throttled = Counter(f"{prefix}.throttled")
        self.throttle_wait_ns = Counter(f"{prefix}.throttle_wait_ns")
        self._prefix = prefix
        self._depth = 0
        self.obs = None
        self._depth_metric = None
        #: Fast-path mirror of ``slots``: an available-slot count plus a
        #: FIFO of deferred grant callbacks.  A run uses either
        #: :meth:`admitted` (generator) or :meth:`admit_fast` /
        #: :meth:`release_fast` (timeline) exclusively -- the engine's
        #: mode is fixed per run -- so the two never double-book.
        self._fast_avail = max_inflight
        self._fast_waiting: deque = deque()

    def bind_obs(self, obs) -> None:
        """Register throttle counters and the admission-depth timeline."""
        self.obs = obs
        registry = obs.metrics
        registry.register_counter(self.throttled.name, self.throttled)
        registry.register_counter(
            self.throttle_wait_ns.name, self.throttle_wait_ns
        )
        # Cached handle: this updates twice per admitted op, so the
        # registry lookup must not sit on the hot path.
        self._depth_metric = registry.time_weighted(
            f"{self._prefix}.admission_depth"
        )

    def _note_depth(self) -> None:
        metric = self._depth_metric
        if metric is not None:
            metric.update(self.sim._now, self._depth)

    def admitted(self, inner):
        """Generator: run ``inner`` (an op-execution generator) holding
        one admission slot; waits for a slot first when the channel is
        at its bound."""
        queued = self.sim.now
        self._depth += 1
        self._note_depth()
        try:
            with self.slots.request() as slot:
                yield slot
                waited = self.sim.now - queued
                if waited > 0:
                    self.throttled.add()
                    self.throttle_wait_ns.add(waited)
                yield from inner
        finally:
            self._depth -= 1
            self._note_depth()

    # -- timeline fast path --------------------------------------------------------
    def admit_fast(self, fn) -> None:
        """Admission for the timeline fast path: ``fn()`` runs at the
        grant instant and the caller must call :meth:`release_fast` at
        the op's end.

        Event-shape equivalence with :meth:`admitted`: the generator's
        slot grant is one scheduled event even when a slot is free
        (``Request.succeed``), so the grant always costs exactly one
        hop; the throttle counters update at the grant instant, inside
        that hop, exactly where the generator resumes past its
        ``yield slot``.
        """
        sim = self.sim
        queued = sim.now
        self._depth += 1
        self._note_depth()

        def hop():
            waited = sim.now - queued
            if waited > 0:
                self.throttled.add()
                self.throttle_wait_ns.add(waited)
            fn()

        if self._fast_avail > 0:
            self._fast_avail -= 1
            sim._schedule_call(hop, 0)
        else:
            self._fast_waiting.append(hop)

    def release_fast(self) -> None:
        """Return a fast-path admission slot at the op's end instant.

        Grants the next waiter (one scheduled hop, matching the
        generator's release-inside-with-exit) *before* the depth
        decrement, mirroring :meth:`admitted`'s ``finally`` ordering.
        """
        waiting = self._fast_waiting
        if waiting:
            self.sim._schedule_call(waiting.popleft(), 0)
        else:
            self._fast_avail += 1
        self._depth -= 1
        self._note_depth()

    def __repr__(self):
        return (
            f"ChannelQosState(ch{self.channel}, "
            f"max_inflight={self.max_inflight}, depth={self._depth})"
        )


class BlockWriteLimiter:
    """Per-channel bound on concurrent block-layer writes."""

    def __init__(self, sim, n_channels: int, max_inflight: int, name: str = ""):
        prefix = f"qos.{name}blk"
        self.sim = sim
        self.max_inflight = max_inflight
        self.slots = [
            Resource(sim, capacity=max_inflight) for _ in range(n_channels)
        ]
        self.write_throttled = Counter(f"{prefix}.write_throttled")
        self.write_throttle_wait_ns = Counter(f"{prefix}.write_throttle_wait_ns")
        self.obs = None

    def bind_obs(self, obs) -> None:
        """Register the write-throttle counters."""
        self.obs = obs
        registry = obs.metrics
        registry.register_counter(self.write_throttled.name, self.write_throttled)
        registry.register_counter(
            self.write_throttle_wait_ns.name, self.write_throttle_wait_ns
        )

    def acquire(self, channel_index: int):
        """Generator -> the held request (pass to :meth:`release`)."""
        queued = self.sim.now
        request = self.slots[channel_index].request()
        yield request
        waited = self.sim.now - queued
        if waited > 0:
            self.write_throttled.add()
            self.write_throttle_wait_ns.add(waited)
        return request

    def release(self, channel_index: int, request) -> None:
        """Return a write slot on the channel."""
        self.slots[channel_index].release(request)

    def __repr__(self):
        return (
            f"BlockWriteLimiter(channels={len(self.slots)}, "
            f"max_inflight={self.max_inflight})"
        )

"""Bounded-queue limiters for the device layers.

:class:`ChannelQosState` caps the flash ops admitted to one
:class:`~repro.channel.engine.ChannelEngine`; ops beyond the bound wait
*before* contending for the channel's planes and bus, so the queue the
hardware sees stays shallow and the wait surfaces as backpressure to
whoever issued the op (the block layer, and transitively the LSM flush
path).  :class:`BlockWriteLimiter` does the same one level up for whole
8 MB block writes.

Both are plain resource wrappers: deterministic, FIFO, and invisible
(no extra events) until an op actually has to wait.
"""

from __future__ import annotations

from repro.sim import Resource
from repro.sim.stats import Counter


class ChannelQosState:
    """Admission slots for one channel engine."""

    def __init__(self, sim, channel: int, max_inflight: int, name: str = ""):
        prefix = f"qos.{name}ch{channel}"
        self.sim = sim
        self.channel = channel
        self.max_inflight = max_inflight
        self.slots = Resource(sim, capacity=max_inflight)
        self.throttled = Counter(f"{prefix}.throttled")
        self.throttle_wait_ns = Counter(f"{prefix}.throttle_wait_ns")
        self._prefix = prefix
        self._depth = 0
        self.obs = None

    def bind_obs(self, obs) -> None:
        """Register throttle counters and the admission-depth timeline."""
        self.obs = obs
        registry = obs.metrics
        registry.register_counter(self.throttled.name, self.throttled)
        registry.register_counter(
            self.throttle_wait_ns.name, self.throttle_wait_ns
        )

    def _note_depth(self) -> None:
        if self.obs is not None:
            self.obs.metrics.time_weighted(
                f"{self._prefix}.admission_depth"
            ).update(self.sim.now, self._depth)

    def admitted(self, inner):
        """Generator: run ``inner`` (an op-execution generator) holding
        one admission slot; waits for a slot first when the channel is
        at its bound."""
        queued = self.sim.now
        self._depth += 1
        self._note_depth()
        try:
            with self.slots.request() as slot:
                yield slot
                waited = self.sim.now - queued
                if waited > 0:
                    self.throttled.add()
                    self.throttle_wait_ns.add(waited)
                yield from inner
        finally:
            self._depth -= 1
            self._note_depth()

    def __repr__(self):
        return (
            f"ChannelQosState(ch{self.channel}, "
            f"max_inflight={self.max_inflight}, depth={self._depth})"
        )


class BlockWriteLimiter:
    """Per-channel bound on concurrent block-layer writes."""

    def __init__(self, sim, n_channels: int, max_inflight: int, name: str = ""):
        prefix = f"qos.{name}blk"
        self.sim = sim
        self.max_inflight = max_inflight
        self.slots = [
            Resource(sim, capacity=max_inflight) for _ in range(n_channels)
        ]
        self.write_throttled = Counter(f"{prefix}.write_throttled")
        self.write_throttle_wait_ns = Counter(f"{prefix}.write_throttle_wait_ns")
        self.obs = None

    def bind_obs(self, obs) -> None:
        """Register the write-throttle counters."""
        self.obs = obs
        registry = obs.metrics
        registry.register_counter(self.write_throttled.name, self.write_throttled)
        registry.register_counter(
            self.write_throttle_wait_ns.name, self.write_throttle_wait_ns
        )

    def acquire(self, channel_index: int):
        """Generator -> the held request (pass to :meth:`release`)."""
        queued = self.sim.now
        request = self.slots[channel_index].request()
        yield request
        waited = self.sim.now - queued
        if waited > 0:
            self.write_throttled.add()
            self.write_throttle_wait_ns.add(waited)
        return request

    def release(self, channel_index: int, request) -> None:
        """Return a write slot on the channel."""
        self.slots[channel_index].release(request)

    def __repr__(self):
        return (
            f"BlockWriteLimiter(channels={len(self.slots)}, "
            f"max_inflight={self.max_inflight})"
        )

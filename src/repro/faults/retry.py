"""Timeout, retry and exponential-backoff policy for cluster requests.

The paper moves failure recovery out of the device and into host
software; this module is the host-software half of that bargain for the
request path: a :class:`RetryPolicy` describing per-attempt timeouts and
exponential backoff with jitter, and :func:`race_with_timeout`, the one
safe way to bound a simulated request in time.

``race_with_timeout`` deliberately **abandons** (rather than interrupts)
a request that overruns its deadline.  Interrupting a process that is
queued on a resource it acquired outside a ``with`` block would leak the
slot; abandonment lets the straggler finish harmlessly in the background
while the caller moves on to the next replica -- the same semantics as a
networked client giving up on a slow server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.events import AnyOf

MS = 1_000_000  # ns per millisecond


@dataclass(frozen=True)
class RetryPolicy:
    """How a client bounds and retries one logical request.

    Attempt ``k`` (0-based) sleeps ``backoff_ns(k)`` before retrying:
    ``min(backoff_max_ns, backoff_base_ns * backoff_factor**k)``, spread
    by ``jitter`` (a +/- fraction) when an RNG is supplied so retrying
    clients don't stampede in lockstep.  ``backoff_max_ns`` is a hard
    cap: jitter never pushes a sleep past it.

    ``budget_ns``, when set, is a *total* deadline spanning all attempts
    of one logical request: no new attempt starts after the budget is
    spent, and the deadline propagates to servers so admission control
    can shed the request once it cannot possibly answer in time.
    """

    timeout_ns: int = 50 * MS
    max_attempts: int = 4
    backoff_base_ns: int = 1 * MS
    backoff_factor: float = 2.0
    backoff_max_ns: int = 64 * MS
    jitter: float = 0.2
    budget_ns: Optional[int] = None

    def __post_init__(self):
        if self.timeout_ns <= 0:
            raise ValueError(f"timeout_ns must be > 0, got {self.timeout_ns}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.budget_ns is not None and self.budget_ns <= 0:
            raise ValueError(f"budget_ns must be > 0, got {self.budget_ns}")

    def backoff_ns(self, attempt: int, rng=None) -> int:
        """Backoff before retry number ``attempt`` (0-based), in ns."""
        base = min(
            self.backoff_max_ns,
            self.backoff_base_ns * self.backoff_factor**attempt,
        )
        if rng is not None and self.jitter > 0.0:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0, min(self.backoff_max_ns, int(base)))


def defuse_on_failure(event):
    """Keep a failure of ``event`` from crashing the kernel when nobody
    is waiting on it *yet*.

    The kernel treats an unobserved failure as a programming error and
    re-raises it out of the event loop.  A caller that spawns several
    processes and then waits on them one at a time (or may stop waiting
    early) attaches this first; waiters that do ``yield event`` later
    still receive the exception as usual.  Returns ``event``.
    """

    def _defuse(evt):
        if not evt.ok:
            evt.defused = True

    event.add_callback(_defuse)
    return event


def race_with_timeout(sim, proc, timeout_ns: int):
    """Wait on ``proc`` for at most ``timeout_ns`` simulated ns.

    A generator to ``yield from`` inside a process.  Returns
    ``(completed, value)``: ``(True, value)`` if the process finished in
    time, ``(False, None)`` if the deadline passed first (the process is
    defused and left to finish in the background).  A process *failure*
    inside the window re-raises in the caller, exactly as a bare
    ``yield proc`` would.
    """
    if proc.triggered:
        # Already finished: observe the result without scheduling a timer.
        if not proc.ok:
            proc.defused = True
            raise proc.value
        return True, proc.value

    # A failure that lands after we stopped waiting (timer won the race,
    # or won a same-instant tie) must not crash the kernel's
    # unobserved-failure check.  When the AnyOf is still pending it
    # fails too and the error reaches the caller as usual.
    defuse_on_failure(proc)
    timer = sim.timeout(timeout_ns)
    yield AnyOf(sim, [proc, timer])
    if proc.triggered:
        if not proc.ok:
            raise proc.value
        return True, proc.value
    proc.defused = True  # abandon: let the straggler finish unobserved
    return False, None

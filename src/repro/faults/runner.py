"""Drives a plan's *scheduled* faults against live components.

Probabilistic rules are pulled by the layers themselves; scheduled
faults (node crashes with a recovery time) need something to push them.
:class:`FaultRunner` binds each scheduled site to a target object and
spawns one driver process per fault: sleep until ``at_ns``, apply the
fault, sleep ``duration_ns``, run the target's recovery.

Scheduled kinds:

* ``crash`` -- the target must expose ``crash()`` (synchronous) and
  ``restart()`` (a generator to run as part of the driver process);
* ``brownout`` -- the target must expose ``begin_brownout(multiplier)``
  and ``end_brownout()`` (both synchronous); the node stays up but every
  handler CPU charge is multiplied for the fault's duration.  Pass the
  multiplier as a schedule arg: ``plan.schedule(site, BROWNOUT, at_ns,
  duration_ns, multiplier=20.0)``.
* ``partition`` -- the target must expose ``begin_partition(a, b,
  symmetric)`` and ``end_partition(a, b, symmetric)`` (both synchronous;
  :class:`repro.cluster.network.Network` does).  ``a`` and ``b`` name
  the two sides of the cut: single NIC names or comma-joined groups
  (``a="ctl0", b="ctl1,ctl2,n0"``); ``symmetric=False`` cuts only the
  ``a`` -> ``b`` direction.  Schedule as ``plan.schedule("net",
  PARTITION, at_ns, duration_ns, a="ctl0", b="ctl1,ctl2")``.

An optional ``on_restore`` callback -- a generator -- runs after
recovery of either kind, which is where replica resynchronisation
(:meth:`repro.cluster.replication.ReplicatedKV.heal`) hooks in.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.faults.errors import FaultInjectionError
from repro.faults.injector import BROWNOUT, CRASH, PARTITION, ScheduledFault


def _partition_sides(args: dict):
    """Decode the ``a``/``b`` endpoint groups of one partition fault."""
    try:
        a, b = args["a"], args["b"]
    except KeyError as exc:
        raise FaultInjectionError(
            "partition fault needs a= and b= endpoint names"
        ) from exc
    side_a = tuple(a.split(",")) if isinstance(a, str) else a
    side_b = tuple(b.split(",")) if isinstance(b, str) else b
    return side_a, side_b, bool(args.get("symmetric", True))


class FaultRunner:
    """Executes a :class:`~repro.faults.plan.FaultPlan`'s schedule."""

    def __init__(self, sim, plan):
        self.sim = sim
        self.plan = plan
        self._targets: Dict[str, Tuple[object, Optional[Callable]]] = {}
        self._started = False
        plan.bind_clock(sim)

    def bind(self, site: str, target, on_restore: Optional[Callable] = None) -> None:
        """Attach the live object that scheduled faults at ``site`` hit."""
        self._targets[site] = (target, on_restore)

    def start(self) -> None:
        """Spawn one driver process per scheduled fault.

        Call after binding every scheduled site and before (or during)
        ``sim.run()``.  Unbound scheduled sites are an error: a typo'd
        site name silently injecting nothing would defeat the test tier.
        """
        if self._started:
            raise FaultInjectionError("FaultRunner.start() called twice")
        self._started = True
        for site in self.plan.sites():
            faults = self.plan.scheduled_for(site)
            if not faults:
                continue
            if site not in self._targets:
                raise FaultInjectionError(
                    f"scheduled fault at unbound site {site!r}; "
                    f"bound sites: {sorted(self._targets)}"
                )
            target, on_restore = self._targets[site]
            for fault in faults:
                self.sim.process(self._drive(site, target, on_restore, fault))

    def _drive(self, site, target, on_restore, fault: ScheduledFault):
        injector = self.plan.injector(site)
        delay = fault.at_ns - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        if fault.kind == CRASH:
            target.crash()
            injector.inject(CRASH, **dict(fault.args))
            if fault.duration_ns is None:
                return  # never recovers
            if fault.duration_ns > 0:
                yield self.sim.timeout(fault.duration_ns)
            yield from target.restart()
            injector.note("restart", **dict(fault.args))
            if on_restore is not None:
                yield from on_restore()
        elif fault.kind == BROWNOUT:
            args = dict(fault.args)
            target.begin_brownout(args.get("multiplier", 10.0))
            injector.inject(BROWNOUT, **args)
            if fault.duration_ns is None:
                return  # never recovers
            if fault.duration_ns > 0:
                yield self.sim.timeout(fault.duration_ns)
            target.end_brownout()
            injector.note("brownout_end", **args)
            if on_restore is not None:
                yield from on_restore()
        elif fault.kind == PARTITION:
            args = dict(fault.args)
            side_a, side_b, symmetric = _partition_sides(args)
            target.begin_partition(side_a, side_b, symmetric=symmetric)
            injector.inject(PARTITION, **args)
            if fault.duration_ns is None:
                return  # never heals
            if fault.duration_ns > 0:
                yield self.sim.timeout(fault.duration_ns)
            target.end_partition(side_a, side_b, symmetric=symmetric)
            injector.note("partition_heal", **args)
            if on_restore is not None:
                yield from on_restore()
        else:
            raise FaultInjectionError(
                f"don't know how to drive scheduled fault kind {fault.kind!r}"
            )

"""The :class:`FaultPlan`: one seedable description of everything that
will go wrong in a run.

A plan is built up front, wired into an already-constructed system with
the helpers in :mod:`repro.faults.wire` (or by assigning
``layer.faults = plan.injector(site)`` by hand), and then left alone:
layers consult their injector on each operation, scheduled faults are
driven by a :class:`~repro.faults.runner.FaultRunner`.

Two properties the test tier leans on:

* **Determinism** -- the full fault sequence is a pure function of the
  plan (seed, rules, schedule) and the simulated workload.  Each rule
  draws from its own RNG stream, so adding a rule at one site never
  shifts the draws at another.
* **No drift** -- an *empty* plan is behaviourally identical to no plan
  at all: injectors return immediately on the rule-table miss, make no
  RNG draws and schedule no events, so traces and metrics come out
  byte-identical (asserted by ``tests/faults/test_no_drift.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.errors import FaultInjectionError
from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    FaultRule,
    ScheduledFault,
    _RuleState,
)


class FaultPlan:
    """A seeded collection of probabilistic rules and scheduled faults."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        #: every fired fault and recovery action, in firing order
        self.log: List[FaultEvent] = []
        self._states: Dict[Tuple[str, str], List[_RuleState]] = {}
        self._scheduled: Dict[str, List[ScheduledFault]] = {}
        self._injectors: Dict[str, FaultInjector] = {}
        self._n_rules = 0
        self._sim = None
        self.obs = None

    # -- construction ------------------------------------------------------------
    def add(
        self,
        site: str,
        kind: str,
        rate: float = 0.0,
        at_op: Optional[int] = None,
        count: Optional[int] = None,
        after_ns: int = 0,
        before_ns: Optional[int] = None,
        delay_ns: int = 0,
        where: Optional[dict] = None,
        rng=None,
    ) -> "FaultPlan":
        """Add one probabilistic (``rate``) or deterministic (``at_op``)
        fault rule.  Returns ``self`` so rules chain fluently.

        ``rng`` overrides the rule's derived RNG stream with a caller
        generator -- only for compatibility shims that must preserve a
        historical draw sequence; normal plans should leave it unset.
        """
        if rate < 0.0 or rate > 1.0:
            raise FaultInjectionError(f"rate must be in [0, 1], got {rate}")
        if at_op is not None and at_op < 1:
            raise FaultInjectionError(f"at_op is 1-based, got {at_op}")
        if at_op is None and rate == 0.0 and delay_ns == 0:
            raise FaultInjectionError(
                "rule needs a rate, an at_op or a delay_ns; got none"
            )
        if count is not None and count < 1:
            raise FaultInjectionError(f"count must be >= 1, got {count}")
        rule = FaultRule(
            site=site,
            kind=kind,
            rate=rate,
            at_op=at_op,
            count=count,
            after_ns=after_ns,
            before_ns=before_ns,
            delay_ns=delay_ns,
            where=tuple(sorted(where.items())) if where else None,
            # Stream index is the rule's position *within its own
            # (site, kind) list*: adding rules elsewhere never shifts
            # another site's RNG stream.
            index=len(self._states.get((site, kind), ())),
        )
        self._n_rules += 1
        self._states.setdefault((site, kind), []).append(
            _RuleState(rule, self.seed, rng=rng)
        )
        return self

    def schedule(
        self,
        site: str,
        kind: str,
        at_ns: int,
        duration_ns: Optional[int] = 0,
        **args,
    ) -> "FaultPlan":
        """Pin a fault to an absolute simulated time (node crashes).

        ``duration_ns`` is how long the fault lasts before recovery
        begins (``None`` = never recovers).
        """
        if at_ns < 0:
            raise FaultInjectionError(f"at_ns must be >= 0, got {at_ns}")
        if duration_ns is not None and duration_ns < 0:
            raise FaultInjectionError(
                f"duration_ns must be >= 0 or None, got {duration_ns}"
            )
        fault = ScheduledFault(
            site=site,
            kind=kind,
            at_ns=int(at_ns),
            duration_ns=duration_ns,
            args=tuple(sorted(args.items())),
        )
        self._scheduled.setdefault(site, []).append(fault)
        return self

    # -- wiring --------------------------------------------------------------------
    def injector(self, site: str) -> FaultInjector:
        """The (cached) injector handle for a named site."""
        handle = self._injectors.get(site)
        if handle is None:
            handle = self._injectors[site] = FaultInjector(self, site)
        return handle

    def bind_clock(self, sim) -> None:
        """Give the plan a simulator so events carry timestamps and
        time-window rules (``after_ns``/``before_ns``) take effect."""
        self._sim = sim

    def attach_obs(self, obs) -> None:
        """Mirror fired faults into ``repro.obs`` metrics and traces."""
        self.obs = obs

    def scheduled_for(self, site: str) -> List[ScheduledFault]:
        """Scheduled faults registered against a site, in time order."""
        return sorted(self._scheduled.get(site, ()), key=lambda f: f.at_ns)

    def sites(self) -> List[str]:
        """Every site named by a rule or a scheduled fault."""
        names = {site for (site, _kind) in self._states}
        names.update(self._scheduled)
        return sorted(names)

    # -- runtime ---------------------------------------------------------------------
    def now_ns(self) -> Optional[int]:
        """Current simulated time, or None before a clock is bound."""
        return self._sim.now if self._sim is not None else None

    def _record(
        self,
        site: str,
        kind: str,
        now_ns: Optional[int],
        ctx: dict,
        rule: Optional[FaultRule] = None,
        recovery: bool = False,
    ) -> FaultEvent:
        event = FaultEvent(
            site=site, kind=kind, at_ns=now_ns, recovery=recovery, ctx=dict(ctx)
        )
        self.log.append(event)
        obs = self.obs
        if obs is not None:
            family = "recovery" if recovery else "faults"
            obs.metrics.counter(f"{family}.{site}.{kind}").add(1)
            if obs.trace.enabled:
                obs.trace.instant(
                    f"faults/{site}",
                    f"{'recover:' if recovery else ''}{kind}",
                    now_ns or 0,
                    **event.ctx,
                )
        return event

    # -- inspection --------------------------------------------------------------------
    def signatures(self) -> List[tuple]:
        """The fault log as hashable tuples (for determinism asserts)."""
        return [event.signature() for event in self.log]

    def fault_count(self, site: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Fired (non-recovery) faults, optionally filtered."""
        return sum(
            1
            for e in self.log
            if not e.recovery
            and (site is None or e.site == site)
            and (kind is None or e.kind == kind)
        )

    def recovery_count(
        self, site: Optional[str] = None, kind: Optional[str] = None
    ) -> int:
        """Logged recovery actions, optionally filtered."""
        return sum(
            1
            for e in self.log
            if e.recovery
            and (site is None or e.site == site)
            and (kind is None or e.kind == kind)
        )

    def __repr__(self):
        return (
            f"FaultPlan(seed={self.seed}, rules={self._n_rules}, "
            f"scheduled={sum(len(v) for v in self._scheduled.values())}, "
            f"fired={len(self.log)})"
        )

"""repro.faults -- deterministic, seedable fault injection (paper S2.2).

The paper's reliability bet is that host software -- replication,
failover, bad-block remapping, WAL replay -- can absorb every failure
the device no longer hides.  This package is the test substrate for
that bet: a :class:`FaultPlan` describes what goes wrong (probabilistic
rules + scheduled crashes), per-site :class:`FaultInjector` handles are
threaded through the NAND/channel/link/network/node layers behind no-op
defaults, a :class:`FaultRunner` drives scheduled faults, and
:class:`RetryPolicy`/:func:`race_with_timeout` provide the host-side
timeout/backoff machinery.

An unconfigured run is guaranteed byte-identical to a run with no plan
attached (same event sequence, no RNG draws); same plan seed + same
workload is guaranteed to produce the same fault sequence.
"""

from repro.faults.errors import FaultInjectionError, TransientFault
from repro.faults.injector import (
    BROWNOUT,
    CRASH,
    DELAY,
    DROP,
    ERASE_FAIL,
    NULL_INJECTOR,
    PARTITION,
    PROGRAM_FAIL,
    READ_UNCORRECTABLE,
    STALL,
    FaultEvent,
    FaultInjector,
    FaultRule,
    NullFaultInjector,
    ScheduledFault,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import (
    RetryPolicy,
    defuse_on_failure,
    race_with_timeout,
)
from repro.faults.runner import FaultRunner
from repro.faults.wire import (
    attach_device_faults,
    attach_network_faults,
    attach_server_faults,
    attach_system_faults,
)

__all__ = [
    "BROWNOUT",
    "CRASH",
    "DELAY",
    "DROP",
    "ERASE_FAIL",
    "NULL_INJECTOR",
    "PARTITION",
    "PROGRAM_FAIL",
    "READ_UNCORRECTABLE",
    "STALL",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultRunner",
    "NullFaultInjector",
    "RetryPolicy",
    "ScheduledFault",
    "TransientFault",
    "attach_device_faults",
    "attach_network_faults",
    "attach_server_faults",
    "attach_system_faults",
    "defuse_on_failure",
    "race_with_timeout",
]

"""Transient-fault exception taxonomy.

Every injected (or naturally occurring) failure that host software is
expected to *recover from* derives from :class:`TransientFault`:
uncorrectable device reads, dropped network messages, requests to a
crashed node.  Retry/failover code catches this one base class instead
of enumerating layer-specific exception types, and anything that is
**not** a ``TransientFault`` (programming-model violations, out of
space, routing bugs) still propagates loudly.

:class:`TransientFault` itself lives in :mod:`repro.errors` (the
package-wide exception hierarchy) and is re-exported here so that the
historical ``repro.faults.errors.TransientFault`` import path keeps
working -- it is the *same* class object, so ``except`` clauses match
either spelling.
"""

from __future__ import annotations

from repro.errors import TransientFault

__all__ = ["TransientFault", "FaultInjectionError"]


class FaultInjectionError(ValueError):
    """Invalid fault-plan configuration (bad rule, unknown site, ...)."""

"""Transient-fault exception taxonomy.

Every injected (or naturally occurring) failure that host software is
expected to *recover from* derives from :class:`TransientFault`:
uncorrectable device reads, dropped network messages, requests to a
crashed node.  Retry/failover code catches this one base class instead
of enumerating layer-specific exception types, and anything that is
**not** a ``TransientFault`` (programming-model violations, out of
space, routing bugs) still propagates loudly.

This module sits at the bottom of the dependency graph on purpose: the
NAND, link, network and cluster layers all import it, so it must import
nothing from them.
"""

from __future__ import annotations


class TransientFault(Exception):
    """A failure that retry, failover or replica recovery can absorb."""


class FaultInjectionError(ValueError):
    """Invalid fault-plan configuration (bad rule, unknown site, ...)."""

"""Fault rules, events and the per-site injector handle.

The fault plane follows the same attachment pattern as ``repro.obs``:
every instrumented layer holds a :data:`NULL_INJECTOR` by default, so an
unconfigured run pays one attribute access per site and executes an
*identical* event sequence (no RNG draws, no extra timeouts).  Wiring a
:class:`~repro.faults.plan.FaultPlan` swaps the attribute for a live
:class:`FaultInjector` bound to a named site.

Sites are plain strings; the conventions used by the wiring helpers:

========================  =====================================================
site                      faults consulted there
========================  =====================================================
``nand``                  chip ops (``program_fail``/``erase_fail``/
                          ``read_uncorrectable``), ctx: chip/plane/block/page
``ch<N>``                 channel engine N (``stall`` latency spikes)
``link``                  host link (``drop``, ``delay``)
``net``                   datacenter network (``drop``, ``delay``,
                          scheduled ``partition`` link cuts)
``node<N>``               storage server N (scheduled ``crash``/``brownout``)
``replication``           ``ReplicatedKV`` read-path BCH-failure stand-in
========================  =====================================================

Determinism: each rule owns an independent RNG stream derived from
``(plan seed, site, kind, rule index)`` via CRC32 of the strings, so the
fault sequence depends only on the plan seed and the (deterministic)
order of checks at its own site -- never on activity at other sites.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

# -- fault kinds (plain strings so layers can define their own) -------------------
PROGRAM_FAIL = "program_fail"  #: NAND program failed to verify
ERASE_FAIL = "erase_fail"  #: NAND erase failed to verify
READ_UNCORRECTABLE = "read_uncorrectable"  #: page read beyond BCH strength
STALL = "stall"  #: channel latency spike
DROP = "drop"  #: message/transfer lost
DELAY = "delay"  #: message/transfer delayed
CRASH = "crash"  #: node crash (scheduled; paired with restart)
BROWNOUT = "brownout"  #: node slowdown (scheduled; latency multiplier)
PARTITION = "partition"  #: network link cut (scheduled; paired with heal)


@dataclass(frozen=True)
class FaultRule:
    """One configured fault source at a (site, kind).

    Probabilistic rules set ``rate`` (one RNG draw per opportunity);
    deterministic rules set ``at_op`` (fire on the Nth matching
    opportunity, 1-based).  ``count`` caps total fires, ``after_ns`` /
    ``before_ns`` gate by simulated time (evaluated when the plan has a
    bound clock), ``where`` filters on context keys (e.g.
    ``{"plane": 0}``), and ``delay_ns`` is the injected latency for
    delay-type kinds.
    """

    site: str
    kind: str
    rate: float = 0.0
    at_op: Optional[int] = None
    count: Optional[int] = None
    after_ns: int = 0
    before_ns: Optional[int] = None
    delay_ns: int = 0
    where: Optional[Tuple[Tuple[str, object], ...]] = None
    index: int = 0


@dataclass(frozen=True)
class ScheduledFault:
    """A fault pinned to an absolute simulated time (node crashes)."""

    site: str
    kind: str
    at_ns: int
    duration_ns: Optional[int] = 0
    args: Tuple[Tuple[str, object], ...] = ()


@dataclass
class FaultEvent:
    """One fired fault or recovery action (the plan's audit log entry)."""

    site: str
    kind: str
    at_ns: Optional[int]
    recovery: bool = False
    ctx: dict = field(default_factory=dict)

    def signature(self) -> tuple:
        """Hashable identity used by determinism tests."""
        return (
            self.site,
            self.kind,
            self.at_ns,
            self.recovery,
            tuple(sorted(self.ctx.items())),
        )


class _RuleState:
    """Mutable per-rule bookkeeping: opportunity/fire counters + RNG."""

    __slots__ = ("rule", "opportunities", "fired", "_rng", "_seed")

    def __init__(self, rule: FaultRule, seed: int, rng=None):
        self.rule = rule
        self.opportunities = 0
        self.fired = 0
        self._rng = rng
        self._seed = seed

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            rule = self.rule
            self._rng = np.random.default_rng(
                [
                    self._seed,
                    zlib.crc32(rule.site.encode()),
                    zlib.crc32(rule.kind.encode()),
                    rule.index,
                ]
            )
        return self._rng

    def exhausted(self) -> bool:
        rule = self.rule
        if rule.count is not None and self.fired >= rule.count:
            return True
        if rule.at_op is not None and self.opportunities >= rule.at_op:
            return True
        return False


def _matches(rule: FaultRule, now_ns: Optional[int], ctx: dict) -> bool:
    if now_ns is not None:
        if now_ns < rule.after_ns:
            return False
        if rule.before_ns is not None and now_ns >= rule.before_ns:
            return False
    if rule.where:
        for key, expected in rule.where:
            if ctx.get(key) != expected:
                return False
    return True


class FaultInjector:
    """A site-scoped handle any layer can consult on its hot path.

    All state lives in the owning plan; the injector is a thin view so
    that rules added after :meth:`~repro.faults.plan.FaultPlan.injector`
    was called are still seen.
    """

    __slots__ = ("plan", "site")

    def __init__(self, plan, site: str):
        self.plan = plan
        self.site = site

    def fires(self, kind: str, **ctx) -> Optional[FaultEvent]:
        """Should a ``kind`` fault strike this operation?

        Returns the logged :class:`FaultEvent` when a rule fires, else
        None.  With no rule configured for (site, kind) this is one dict
        miss: no RNG draw, no logging, no drift.
        """
        states = self.plan._states.get((self.site, kind))
        if not states:
            return None
        return self._evaluate(states, kind, ctx)

    def quiet(self, *kinds: str) -> bool:
        """True when no rule is configured at this site for any ``kinds``.

        Fast paths use this to stay eligible under a wired-but-quiet
        injector: with no rule at (site, kind) the generator path makes
        no RNG draw and injects nothing, so eliding the check entirely
        is drift-free.  Evaluated per call because rules may be added to
        the plan mid-run.
        """
        states = self.plan._states
        return all(not states.get((self.site, kind)) for kind in kinds)

    def delay_ns(self, kind: str, **ctx) -> int:
        """Injected extra latency for this operation (0 when quiet)."""
        states = self.plan._states.get((self.site, kind))
        if not states:
            return 0
        total = 0
        event = self._evaluate(states, kind, ctx, sum_delays=True)
        if event is not None:
            total = event.ctx.get("delay_ns", 0)
        return total

    def _evaluate(self, states, kind, ctx, sum_delays: bool = False):
        now = self.plan.now_ns()
        fired_delay = 0
        event = None
        for state in states:
            rule = state.rule
            if state.exhausted():
                continue
            if not _matches(rule, now, ctx):
                continue
            state.opportunities += 1
            hit = False
            if rule.at_op is not None:
                hit = state.opportunities == rule.at_op
            elif rule.rate > 0.0:
                hit = state.rng.random() < rule.rate
            if not hit:
                continue
            state.fired += 1
            if sum_delays:
                fired_delay += rule.delay_ns
                continue
            event = self.plan._record(self.site, kind, now, ctx, rule=rule)
            return event
        if sum_delays and fired_delay > 0:
            return self.plan._record(
                self.site, kind, now, dict(ctx, delay_ns=fired_delay)
            )
        return event

    # -- bookkeeping hooks for the layers ------------------------------------------
    def inject(self, kind: str, **ctx) -> FaultEvent:
        """Log an externally-applied fault (e.g. a scheduled crash)."""
        return self.plan._record(self.site, kind, self.plan.now_ns(), ctx)

    def note(self, event: str, **ctx) -> FaultEvent:
        """Log a *recovery* action (remap, retire, WAL replay, ...)."""
        return self.plan._record(
            self.site, event, self.plan.now_ns(), ctx, recovery=True
        )

    def __repr__(self):
        return f"FaultInjector(site={self.site!r})"


class NullFaultInjector:
    """The no-op default: never fires, never delays, never logs."""

    __slots__ = ()
    site = ""
    plan = None

    def fires(self, kind: str, **ctx) -> None:
        return None

    def quiet(self, *kinds: str) -> bool:
        return True

    def delay_ns(self, kind: str, **ctx) -> int:
        return 0

    def inject(self, kind: str, **ctx) -> None:
        return None

    def note(self, event: str, **ctx) -> None:
        return None

    def __repr__(self):
        return "NullFaultInjector()"


#: Shared no-op injector every instrumented layer defaults to.
NULL_INJECTOR = NullFaultInjector()

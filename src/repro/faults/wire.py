"""Attach a :class:`~repro.faults.plan.FaultPlan` to built systems.

Mirrors :mod:`repro.obs.attach`: systems are constructed fault-free and
wired afterwards.  Site naming (``prefix`` distinguishes multiple
devices/servers under one plan):

* ``{prefix}nand`` -- every chip of the device (ctx carries chip id);
* ``{prefix}ch<N>`` -- channel engine N;
* ``{prefix}ftl.ch<N>`` -- channel FTL N (recovery logging only);
* ``{prefix}link`` -- the host link;
* network / replication / node sites are whatever string the caller
  picks when wiring them (conventionally ``net``, ``replication``,
  ``node<N>``).
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan


def attach_device_faults(plan: FaultPlan, device, prefix: str = "") -> None:
    """Wire a device (SDF or conventional): chips, engines, FTLs, link."""
    plan.bind_clock(device.sim)
    nand = plan.injector(f"{prefix}nand")
    for channel_chips in device.array.chips:
        for chip in channel_chips:
            chip.faults = nand
    for engine in device.engines:
        engine.faults = plan.injector(f"{prefix}ch{engine.channel}")
    for ftl in getattr(device, "ftls", ()):
        ftl.faults = plan.injector(f"{prefix}ftl.ch{ftl.channel}")
    if hasattr(device, "link"):
        device.link.faults = plan.injector(f"{prefix}link")


def _wire_system_faults(plan: FaultPlan, system, prefix: str = "") -> None:
    """Wire an :class:`~repro.core.api.SDFSystem` (its device)."""
    attach_device_faults(plan, system.device, prefix=prefix)


def attach_system_faults(plan: FaultPlan, system, prefix: str = "") -> None:
    """Deprecated: use ``system.attach(plan, prefix=...)`` or
    ``build_sdf_system(faults=...)`` instead."""
    import warnings

    warnings.warn(
        "attach_system_faults() is deprecated; use SDFSystem.attach(plan) "
        "or build_sdf_system(faults=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    _wire_system_faults(plan, system, prefix=prefix)


def attach_network_faults(plan: FaultPlan, network, site: str = "net") -> None:
    """Wire a :class:`~repro.cluster.network.Network`."""
    plan.bind_clock(network.sim)
    network.faults = plan.injector(site)


def attach_server_faults(plan: FaultPlan, server, site: str) -> None:
    """Wire a :class:`~repro.cluster.node.StorageServer` and the device
    underneath it (sites prefixed ``{site}.``); the server itself is the
    ``site`` target for scheduled crashes via a
    :class:`~repro.faults.runner.FaultRunner`."""
    plan.bind_clock(server.sim)
    storage = server.storage
    if hasattr(storage, "block_layer"):  # SDFNodeStorage
        attach_device_faults(plan, storage.block_layer.device, prefix=f"{site}.")
    elif hasattr(storage, "device"):  # ConventionalNodeStorage
        attach_device_faults(plan, storage.device, prefix=f"{site}.")
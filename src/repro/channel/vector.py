"""Vectorized (numpy) batch math for the channel fast path.

Everything in this module is **observationally neutral**: it computes
exactly the values the scalar hot paths would compute lazily -- same
float expressions, same rounding -- and schedules exactly the events
the per-op fast path would schedule, so the byte-identical no-drift
contract is untouched.  Three facilities:

* :func:`transfer_costs` -- vectorized ``repro.sim.units.transfer_ns``
  over a batch of payload sizes (identical banker's rounding: both
  Python's ``round`` and ``np.rint`` round half to even on float64).
* :func:`prefill_bus_costs` -- batch-warm a channel engine's memoized
  ``bus_transfer_ns`` table for one submission batch.
* :func:`schedule_erase_batch` -- closed-form scheduling of an
  all-ERASE batch: per-plane grant/end arrays via
  :meth:`~repro.sim.timeline.ResourceTimeline.reserve_bulk` (a cumsum
  instead of per-op Python arithmetic), counters from the array sums,
  and one shared countdown callback instead of per-op closures.

numpy is optional at import time (``HAVE_NUMPY``); callers fall back
to the scalar paths when it is absent.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None

HAVE_NUMPY = np is not None

#: Below this many ops the per-op scalar path wins (array setup costs
#: more than it saves).
ERASE_BATCH_MIN = 4

from repro.ftl.ops import OpKind
from repro.sim.units import MB_DEC, S, transfer_ns


def transfer_costs(
    sizes: Iterable[int], mb_per_s: float
) -> List[Tuple[int, int]]:
    """``[(nbytes, transfer_ns(nbytes, mb_per_s)), ...]`` for a batch.

    Bit-identical to the scalar :func:`~repro.sim.units.transfer_ns`:
    the rate is the same float expression and ``np.rint`` matches
    ``round``'s half-to-even on float64.
    """
    sizes = [int(n) for n in sizes]
    if np is None or len(sizes) < 2:
        return [(n, transfer_ns(n, mb_per_s)) for n in sizes]
    arr = np.asarray(sizes, dtype=np.int64)
    rate = mb_per_s * MB_DEC / S  # bytes/ns, same expression as scalar
    costs = np.rint(arr.astype(np.float64) / rate).astype(np.int64)
    np.maximum(costs, 1, out=costs)
    costs[arr <= 0] = 0
    return list(zip(sizes, costs.tolist()))


def prefill_bus_costs(timing, cache: dict, ops) -> None:
    """Warm an engine's ``bus_transfer_ns`` memo table for one batch.

    Pure cache fill with the values the per-op path would compute on
    miss; no-op when numpy is absent or fewer than two sizes miss.
    """
    if np is None:
        return
    missing = {op.nbytes for op in ops if op.nbytes not in cache}
    if len(missing) < 2:
        return
    overhead = timing.bus_overhead_ns
    for nbytes, cost in transfer_costs(missing, timing.bus_mb_per_s):
        cache[nbytes] = overhead + cost


def erase_batch_ready(ops) -> bool:
    """True when ``ops`` is a vectorizable all-ERASE batch.

    The engine gates further (plain fast plan, no obs, no faults): the
    closed-form path updates the wait/ops counters at submission rather
    than per op-end, which is only invisible when nothing observes them
    mid-batch.
    """
    return (
        np is not None
        and len(ops) >= ERASE_BATCH_MIN
        and all(op.kind is OpKind.ERASE for op in ops)
    )


def schedule_erase_batch(engine, ops, done) -> None:
    """Schedule an all-ERASE batch in closed form; ``done()`` fires at
    the last op's end instant.

    Event-shape equivalence with per-op ``execute_fast``: per plane the
    first op's end event is pushed (or relay-scheduled / tail-chained)
    exactly as ``_phase_fast`` would, and every successor chains off
    its predecessor's ``_PhaseEnd`` hooks -- identical event times and
    identical seq-assignment points, so the heap order matches the
    per-op path event for event.  Grouping by plane only reorders
    *reservations across independent timelines*, which cannot change
    any grant (the planes share no state) and preserves first-op push
    order (groups keep first-appearance order).
    """
    sim = engine.sim
    now = sim._now
    duration = engine.timing.t_erase_ns
    channel = engine.channel

    groups: dict = {}
    for op in ops:
        if op.address.channel != channel:
            raise ValueError(
                f"op for channel {op.address.channel} sent to engine "
                f"{channel}"
            )
        key = (op.address.chip, op.address.plane)
        groups[key] = groups.get(key, 0) + 1

    remaining = [len(ops)]

    def tick():
        remaining[0] -= 1
        if not remaining[0]:
            done()

    raw = engine._busy_union._raw
    total_wait = 0
    for key, count in groups.items():
        timeline = engine._tl_planes[key]
        tail = timeline._tail_hooks
        grants, ends = timeline.reserve_bulk(now, duration, count)
        total_wait += int(grants.sum()) - now * count
        raw.extend(
            [int(g), int(e)] for g, e in zip(grants.tolist(), ends.tolist())
        )
        first_grant = int(grants[0])
        hooks: list = []
        if first_grant <= now:
            sim._schedule(sim._phase_event(tick, hooks), duration)
        elif tail is None:
            # Predecessor reserved without an end event: relay at grant.
            sim._schedule_call(
                lambda h=hooks: sim._schedule(
                    sim._phase_event(tick, h), duration
                ),
                first_grant - now,
            )
        else:
            tail.append((tick, hooks, duration))
        for _ in range(count - 1):
            successor: list = []
            hooks.append((tick, successor, duration))
            hooks = successor
        timeline._tail_hooks = hooks

    # Closed-form counters: identical totals to the per-op path's
    # end-instant updates (ERASE wait is grant - submission), summed.
    engine.ops_executed.add(len(ops))
    engine.wait_ns.add(total_wait)

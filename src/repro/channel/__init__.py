"""Timed flash-channel engines.

A :class:`~repro.channel.engine.ChannelEngine` owns one channel's shared
bus and per-plane resources and charges simulated time for the
:class:`~repro.ftl.ops.FlashOp`\\ s that the (functional) FTLs emit.  The
overlap rules implement real NAND pipelining:

* READ: the plane is busy for tR, then the data moves over the shared
  channel bus (the plane is free again during the transfer, so the next
  page's tR overlaps the previous page's transfer).
* PROGRAM: the data moves over the bus into the chip register, then the
  plane is busy for tPROG (the bus is free during programming, so
  transfers to other planes overlap).
* ERASE: the plane is busy for tBERS; the bus is untouched.
"""

from repro.channel.engine import ChannelEngine, OP_PRIORITIES, build_engines

__all__ = ["ChannelEngine", "OP_PRIORITIES", "build_engines"]

"""Per-channel timed execution of flash operations.

Two scheduling modes produce byte-identical results (see
DESIGN.md "Scheduling modes"):

* the **generator** path models the bus and every (chip, plane) as a
  :class:`~repro.sim.resources.PriorityResource` and runs one process
  per op;
* the **timeline** fast path computes the same grant/end instants
  analytically against per-resource
  :class:`~repro.sim.timeline.ResourceTimeline` objects and schedules
  only a phase-boundary callback per phase plus one completion event
  per op (or per batch).

``mode`` is ``"auto"`` (fast when equivalence is provable, generator
otherwise), ``"generator"`` or ``"timeline"``; the ``REPRO_SIM_MODE``
environment variable overrides the default for a whole run.
"""

from __future__ import annotations

import os
from heapq import heappush
from typing import Dict, Iterable, List, Optional, Tuple

from repro.channel import vector
from repro.errors import ConfigError
from repro.faults.injector import NULL_INJECTOR, STALL
from repro.ftl.ops import FlashOp, OpKind
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim import AllOf, Event, PriorityResource, Simulator
from repro.sim.engine import _PhaseEnd
from repro.sim.stats import Counter
from repro.sim.timeline import BusyUnion, PriorityTimeline, ResourceTimeline

#: Default service priorities (lower = sooner).  The base policy is
#: FIFO-equal; the paper's future-work scheduler prioritizes on-demand
#: reads over writes and erases, which `repro.core.scheduler` enables by
#: passing custom priorities.
OP_PRIORITIES: Dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.PROGRAM: 0,
    OpKind.ERASE: 0,
}

_MODES = ("auto", "generator", "timeline")

#: Cached fast-path eligibility decisions (see ``ChannelEngine.fast_ok``).
_PLAN_SLOW = 0  #: generator path (forced mode)
_PLAN_PLAIN = 1  #: bare analytic path: FIFO timelines, no spans, no QoS
_PLAN_EXT = 2  #: extended analytic path: QoS slots / trace spans / priorities


class _BusyCounterView:
    """Counter-compatible read view over an engine's busy time.

    The generator path accrues into a plain counter while the timeline
    path records reservation intervals; this view sums both so existing
    ``engine.busy_ns.value`` consumers work unchanged in either mode.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "ChannelEngine"):
        self._engine = engine

    @property
    def name(self) -> str:
        return self._engine._busy_counter.name

    @property
    def value(self) -> int:
        return self._engine.busy_value()

    def __repr__(self):
        return f"Counter({self.name!r}, value={self.value})"


def default_engine_mode() -> str:
    """The scheduling mode new engines start in.

    ``REPRO_SIM_MODE`` (``auto``/``generator``/``timeline``) is the
    run-wide escape hatch; unset means ``auto``.
    """
    mode = os.environ.get("REPRO_SIM_MODE", "auto")
    if mode not in _MODES:
        raise ConfigError(
            f"REPRO_SIM_MODE must be one of {_MODES}, got {mode!r}"
        )
    return mode


class ChannelEngine:
    """Charges simulated time for FlashOps on one channel.

    The engine knows nothing about FTLs or data -- it only models the
    hardware contention of one channel: a single shared bus and one
    resource per (chip, plane).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: int,
        geometry: FlashGeometry,
        timing: NandTiming,
        chips_per_channel: int = 2,
        priorities: Optional[Dict[OpKind, int]] = None,
        mode: Optional[str] = None,
    ):
        self.sim = sim
        self.channel = channel
        self.geometry = geometry
        self.timing = timing
        self.priorities = dict(OP_PRIORITIES if priorities is None else priorities)
        #: Cached eligibility plan; None means "recompute on next
        #: submission".  Invalidated by the mode/obs/qos setters.
        self._fast_plan = None
        self._obs = None
        self._qos = None
        self._mode = "auto"
        self.mode = default_engine_mode() if mode is None else mode
        self.bus = PriorityResource(sim, capacity=1, name=f"ch{channel}/bus")
        self._planes: Dict[Tuple[int, int], PriorityResource] = {
            (chip, plane): PriorityResource(
                sim, capacity=1, name=f"ch{channel}/chip{chip}.plane{plane}"
            )
            for chip in range(chips_per_channel)
            for plane in range(geometry.planes_per_chip)
        }
        #: Timeline mirrors of the resources above, used by the fast path.
        self._tl_bus = ResourceTimeline()
        self._tl_planes: Dict[Tuple[int, int], ResourceTimeline] = {
            key: ResourceTimeline() for key in self._planes
        }
        #: Priority-aware mirrors, used by the extended fast path when
        #: priorities are non-uniform (the FIFO timelines above would
        #: compute wrong grant order).
        self._ptl_bus = PriorityTimeline()
        self._ptl_planes: Dict[Tuple[int, int], PriorityTimeline] = {
            key: PriorityTimeline() for key in self._planes
        }
        #: Precomputed trace track names (match the resource names the
        #: generator path emits hold spans under).
        self._track_bus = f"ch{channel}/bus"
        self._track_planes: Dict[Tuple[int, int], str] = {
            key: res.name for key, res in self._planes.items()
        }
        self._ops_track = f"ch{channel}/ops"
        self._busy_union = BusyUnion()
        #: With equal priorities a PriorityResource degenerates to FIFO,
        #: so the plain FIFO timelines apply; non-uniform priorities
        #: route to the PriorityTimeline mirrors instead.
        self._uniform_priorities = len(set(self.priorities.values())) == 1
        self.ops_executed = Counter(f"channel{channel}.ops")
        #: Generator-path accrual of channel busy time; the public view
        #: combining it with the fast path's interval union is
        #: :attr:`busy_ns` / :meth:`busy_value`.
        self._busy_counter = Counter(f"channel{channel}.busy")
        #: Total queue wait summed over ops; can exceed wall-clock time
        #: when many ops wait concurrently.
        self.wait_ns = Counter(f"channel{channel}.wait")
        # self._obs (property ``obs``): optional
        # :class:`repro.obs.Observability`, set by
        # ``repro.obs.attach_device``; None keeps all hooks no-ops.
        # self._qos (property ``qos``): optional
        # :class:`repro.qos.limits.ChannelQosState`, set by
        # ``repro.qos.attach_device_qos``; None keeps admission free.
        # Both initialized above, before the mode property ran.
        #: Fault-injection handle (channel ``stall`` latency spikes);
        #: :data:`~repro.faults.injector.NULL_INJECTOR` unless wired.
        self.faults = NULL_INJECTOR
        self._in_service = 0
        self._busy_since = 0
        self._depth_metric = None
        #: Memoized bus_transfer_ns per payload size (hot path).
        self._bus_ns_cache: Dict[int, int] = {}

    def plane_resource(self, chip: int, plane: int) -> PriorityResource:
        """The contention resource for one (chip, plane)."""
        return self._planes[(chip, plane)]

    # -- attachment points (each invalidates the cached fast plan) ----------------
    @property
    def mode(self) -> str:
        """Scheduling mode: ``auto`` / ``generator`` / ``timeline``."""
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        if value not in _MODES:
            raise ConfigError(
                f"mode must be one of {_MODES}, got {value!r}"
            )
        self._mode = value
        self._fast_plan = None

    @property
    def obs(self):
        """Optional :class:`repro.obs.Observability`; set by
        ``repro.obs.attach_device``.  None keeps all hooks no-ops."""
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value
        self._depth_metric = None
        self._fast_plan = None

    @property
    def qos(self):
        """Optional :class:`repro.qos.limits.ChannelQosState` bounding
        the ops admitted to this channel; set by
        ``repro.qos.attach_device_qos``.  None keeps admission free."""
        return self._qos

    @qos.setter
    def qos(self, value) -> None:
        self._qos = value
        self._fast_plan = None

    def refresh_fast_plan(self) -> None:
        """Drop the cached fast-path eligibility decision.

        Eligibility is invalidated automatically when ``mode``, ``obs``
        or ``qos`` are assigned (every attach helper's path); call this
        after out-of-band changes -- toggling ``obs.trace.enabled`` or
        assigning ``sim.obs`` directly -- so the next submission
        re-reads them.
        """
        self._fast_plan = None

    # -- fast-path eligibility ---------------------------------------------------
    def _compute_plan(self) -> int:
        if self._mode == "generator":
            return _PLAN_SLOW
        sim_obs = self.sim.obs
        eng_obs = self._obs
        traced = (sim_obs is not None and sim_obs.trace.enabled) or (
            eng_obs is not None and eng_obs.trace.enabled
        )
        if self._uniform_priorities and self._qos is None and not traced:
            return _PLAN_PLAIN
        return _PLAN_EXT

    def fast_ok(self) -> bool:
        """True when ops may take the timeline fast path right now.

        Every configuration is analytically schedulable except forced
        generator mode: QoS admission slots are modeled as fast-path
        slot counts with generator-identical grant hops, non-uniform
        priorities use the priority-aware
        :class:`~repro.sim.timeline.PriorityTimeline`, and trace spans
        are emitted directly from reservation intervals.  The decision
        is cached (attachment invalidates it; see
        :meth:`refresh_fast_plan`) so the hot path pays one attribute
        read instead of re-reading ``sim.obs`` per submission.
        """
        plan = self._fast_plan
        if plan is None:
            plan = self._fast_plan = self._compute_plan()
        return plan != _PLAN_SLOW

    # -- accounting --------------------------------------------------------------
    def utilization(self, now_ns: Optional[int] = None) -> float:
        """Fraction of elapsed time with at least one op in service.

        Always in [0, 1]: queue wait is excluded and overlapping service
        intervals are merged before integrating.  Both scheduling modes
        feed this: the generator path through the live in-service
        counter, the timeline path through the reservation interval
        union.
        """
        now = self.sim.now if now_ns is None else now_ns
        if now <= 0:
            return 0.0
        busy = self._busy_counter.value + self._busy_union.busy_through(now)
        if self._in_service:
            busy += now - self._busy_since
        return busy / now

    @property
    def busy_ns(self) -> "_BusyCounterView":
        """Time the channel had at least one op *in service* (holding a
        plane or the bus) -- queue wait excluded, concurrent service on
        several planes counted once, so ``busy_ns.value / elapsed <= 1``.
        A live view valid in both scheduling modes."""
        return _BusyCounterView(self)

    def busy_value(self, now_ns: Optional[int] = None) -> int:
        """Closed busy time (ns) through ``now``, mode-independent.

        Equals the generator path's ``busy_ns`` counter: service
        intervals count once they have fully ended; the currently open
        interval (if any) is excluded, exactly as the counter excludes
        in-flight service.
        """
        now = self.sim.now if now_ns is None else now_ns
        return self._busy_counter.value + self._busy_union.closed_through(now)

    def _service_begin(self, now: int) -> None:
        if self._in_service == 0:
            self._busy_since = now
        self._in_service += 1

    def _service_end(self, now: int) -> None:
        self._in_service -= 1
        if self._in_service == 0:
            self._busy_counter.add(now - self._busy_since)

    def _phase(self, resource: PriorityResource, priority: int, duration_ns: int):
        """Generator: acquire a resource, hold it for the service time.

        Returns the queue wait (grant time minus request time), which is
        accounted separately from service so utilisation stays honest.
        """
        queued = self.sim.now
        obs = self.obs
        depth = None
        if obs is not None:
            depth = obs.metrics.time_weighted(
                f"channel{self.channel}.queue_depth"
            )
            depth.shift(queued, 1)
        with resource.request(priority) as hold:
            yield hold
            granted = self.sim.now
            if depth is not None:
                depth.shift(granted, -1)
            self._service_begin(granted)
            try:
                yield self.sim.hold(duration_ns)
            finally:
                self._service_end(self.sim.now)
        return granted - queued

    # -- timeline fast path --------------------------------------------------------
    def _phase_fast(self, timeline: ResourceTimeline, duration_ns: int, fn):
        """Reserve one phase at sim-now, running ``fn`` at its end.

        Mirrors one generator-path ``_phase``: the queue-depth metric
        sees the request at now and the grant at its (possibly future)
        instant, the busy union records the service interval, and ``fn``
        fires at the end instant with slow-path tie ordering.  Returns
        ``(grant, end)``.
        """
        # ResourceTimeline.reserve_and_call inlined: this is the hottest
        # call site in timeline mode and the extra frames are measurable.
        sim = self.sim
        now = sim._now
        free = timeline.free_at
        grant = free if free > now else now
        end = grant + duration_ns
        timeline.free_at = end
        hooks = []
        if grant <= now:
            pool = sim._phase_pool
            if pool:
                event = pool.pop()
                event._processed = False
                event._fn = fn
                event._hooks = hooks
            else:
                event = _PhaseEnd(sim, fn, hooks)
            sim._seq += 1
            heappush(sim._heap, (end, sim._seq, event))
        else:
            tail = timeline._tail_hooks
            if tail is None:
                delay = end - grant
                sim._schedule_call(
                    lambda: sim._schedule(sim._phase_event(fn, hooks), delay),
                    grant - now,
                )
            else:
                tail.append((fn, hooks, end - grant))
        timeline._tail_hooks = hooks
        # BusyUnion.add inlined; phase durations are always positive.
        self._busy_union._raw.append([grant, end])
        if self._obs is not None:
            self._depth_track(now, grant)
        return grant, end

    def _depth_track(self, request_ns: int, grant_ns: int) -> None:
        """Queue-depth accounting for one fast-path phase, event-free.

        The grant instant is already known at reservation time, so the
        depth decrement is *deferred* into the metric (folded in, in
        timestamp order, by its next update or read) rather than
        scheduled -- the integrated area is byte-identical to the
        generator path's grant-instant update, at zero event cost.
        """
        depth = self._depth_metric
        if depth is None:
            depth = self._depth_metric = self._obs.metrics.time_weighted(
                f"channel{self.channel}.queue_depth"
            )
        depth.shift(request_ns, 1)
        if grant_ns <= request_ns:
            depth.shift(request_ns, -1)
        else:
            depth.shift_at(grant_ns, -1)

    def execute_fast(self, op: FlashOp, then=None) -> None:
        """Timeline-schedule one op; only call when :meth:`fast_ok`.

        ``then()`` (if given) runs at the op's completion instant --
        after the engine's counters update (and, with QoS attached,
        after the admission slot's release) -- with generator-equivalent
        tie ordering, so callers can chain further reservations (link
        DMA, batch completions) exactly where the slow path would.
        """
        plan = self._fast_plan
        if plan is None:
            self.fast_ok()
            plan = self._fast_plan
        if plan == _PLAN_PLAIN:
            faults = self.faults
            if faults is NULL_INJECTOR:
                self._fast_phases(op, then)
                return
            stall_ns = faults.delay_ns(
                STALL, op=op.kind.name.lower(), chip=op.address.chip
            )
            if stall_ns > 0:
                # The generator path sleeps the stall before contending;
                # defer the reservations to the same instant.
                self.sim._schedule_call(
                    lambda: self._fast_phases(op, then), stall_ns
                )
            else:
                self._fast_phases(op, then)
            return
        qos = self._qos
        if qos is None:
            self._ext_submit(op, then)
        else:
            qos.admit_fast(lambda: self._ext_submit(op, then))

    def _ext_submit(self, op: FlashOp, then) -> None:
        """Extended-path submission at ``_execute``'s start instant.

        Runs post-admission (the QoS grant hop already happened) and
        pre-stall: the ops span's start and the stall RNG draw both
        anchor here, exactly where the generator's ``_execute`` body
        begins.  The draw instant matters -- ``FaultEvent.signature()``
        includes ``at_ns`` -- so a queued admission must shift the draw
        to the grant instant, never make it early at submission.
        """
        sim = self.sim
        start = sim._now
        faults = self.faults
        if faults is not NULL_INJECTOR:
            stall_ns = faults.delay_ns(
                STALL, op=op.kind.name.lower(), chip=op.address.chip
            )
            if stall_ns > 0:
                sim._schedule_call(
                    lambda: self._fast_phases_ext(op, start, then), stall_ns
                )
                return
        self._fast_phases_ext(op, start, then)

    def _fast_phases(self, op: FlashOp, then) -> None:
        sim = self.sim
        timing = self.timing
        plane_tl = self._tl_planes[(op.address.chip, op.address.plane)]
        request = sim._now
        kind = op.kind

        cache = self._bus_ns_cache
        bus_ns = cache.get(op.nbytes)
        if bus_ns is None:
            bus_ns = cache[op.nbytes] = timing.bus_transfer_ns(op.nbytes)

        if kind is OpKind.READ:

            def bus_phase():
                request2 = sim._now

                def read_done():
                    self.ops_executed.add()
                    self.wait_ns.add(
                        (grant1 - request) + (grant2 - request2)
                    )
                    if then is not None:
                        then()

                grant2, _ = self._phase_fast(self._tl_bus, bus_ns, read_done)

            grant1, _ = self._phase_fast(plane_tl, timing.t_read_ns, bus_phase)
        elif kind is OpKind.PROGRAM:

            def plane_phase():
                request2 = sim._now

                def program_done():
                    self.ops_executed.add()
                    self.wait_ns.add(
                        (grant1 - request) + (grant2 - request2)
                    )
                    if then is not None:
                        then()

                grant2, _ = self._phase_fast(
                    plane_tl, timing.t_prog_ns, program_done
                )

            grant1, _ = self._phase_fast(self._tl_bus, bus_ns, plane_phase)
        elif kind is OpKind.ERASE:

            def erase_done():
                self.ops_executed.add()
                self.wait_ns.add(grant1 - request)
                if then is not None:
                    then()

            grant1, _ = self._phase_fast(
                plane_tl, timing.t_erase_ns, erase_done
            )
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {kind}")

    # -- extended fast path (QoS / tracing / priorities) ---------------------------
    def _ext_phase(self, key, duration_ns: int, priority: int, done) -> None:
        """One analytic phase on plane ``key`` (None = the bus);
        ``done(wait_ns)`` runs at the end instant.

        The traced twin of ``_phase_fast``: the hold span is emitted at
        the end instant -- where the generator's resource release emits
        it -- with the grant captured by closure, and ``wait_ns`` is
        attached iff ``sim.obs`` was attached at request time (the
        condition under which the generator records ``queued_at``).
        Non-uniform priorities swap the FIFO timeline for the
        priority-aware one; grant instants are then only known at the
        grant callback.
        """
        sim = self.sim
        request = sim._now
        record_wait = sim.obs is not None
        if self._uniform_priorities:
            if key is None:
                track, timeline = self._track_bus, self._tl_bus
            else:
                track, timeline = self._track_planes[key], self._tl_planes[key]

            def ended():
                obs = sim.obs
                if obs is not None and obs.trace.enabled:
                    if record_wait:
                        obs.trace.span(
                            track, "hold", grant, sim._now,
                            wait_ns=grant - request,
                        )
                    else:
                        obs.trace.span(track, "hold", grant, sim._now)
                done(grant - request)

            grant, end = timeline.reserve_and_call(sim, duration_ns, ended)
            self._busy_union._raw.append([grant, end])
            if self._obs is not None:
                self._depth_track(request, grant)
            return
        track = self._track_bus if key is None else self._track_planes[key]

        timeline = self._ptl_bus if key is None else self._ptl_planes[key]
        obs = self._obs
        depth = None
        if obs is not None:
            depth = self._depth_metric
            if depth is None:
                depth = self._depth_metric = obs.metrics.time_weighted(
                    f"channel{self.channel}.queue_depth"
                )
            depth.shift(request, 1)
        grant_cell = [0]

        def granted(grant, end):
            grant_cell[0] = grant
            if depth is not None:
                depth.shift(grant, -1)
            self._busy_union._raw.append([grant, end])

        def prio_ended():
            grant = grant_cell[0]
            o = sim.obs
            if o is not None and o.trace.enabled:
                if record_wait:
                    o.trace.span(
                        track, "hold", grant, sim._now,
                        wait_ns=grant - request,
                    )
                else:
                    o.trace.span(track, "hold", grant, sim._now)
            done(grant - request)

        timeline.reserve_call(sim, priority, duration_ns, granted, prio_ended)

    def _fast_phases_ext(self, op: FlashOp, start: int, then) -> None:
        """Extended-path phase chain + completion for one op.

        Completion order mirrors the generator exactly: engine counters,
        then the ops span, then the QoS slot release (which grants the
        next admission waiter), then the caller's continuation -- the
        generator's inner-finish / with-exit / caller-resume sequence.
        """
        sim = self.sim
        timing = self.timing
        key = (op.address.chip, op.address.plane)
        kind = op.kind
        priority = self.priorities[kind]

        cache = self._bus_ns_cache
        bus_ns = cache.get(op.nbytes)
        if bus_ns is None:
            bus_ns = cache[op.nbytes] = timing.bus_transfer_ns(op.nbytes)

        def completion(wait):
            self.ops_executed.add()
            self.wait_ns.add(wait)
            obs = self._obs
            if obs is not None and obs.trace.enabled:
                obs.trace.span(
                    self._ops_track,
                    kind.name.lower(),
                    start,
                    sim._now,
                    chip=op.address.chip,
                    plane=op.address.plane,
                    block=op.address.block,
                    nbytes=op.nbytes,
                    wait_ns=wait,
                )
            qos = self._qos
            if qos is not None:
                qos.release_fast()
            if then is not None:
                then()

        if kind is OpKind.READ:

            def after_sense(wait1):
                self._ext_phase(
                    None, bus_ns, priority,
                    lambda wait2: completion(wait1 + wait2),
                )

            self._ext_phase(key, timing.t_read_ns, priority, after_sense)
        elif kind is OpKind.PROGRAM:

            def after_stream(wait1):
                self._ext_phase(
                    key, timing.t_prog_ns, priority,
                    lambda wait2: completion(wait1 + wait2),
                )

            self._ext_phase(None, bus_ns, priority, after_stream)
        elif kind is OpKind.ERASE:
            self._ext_phase(key, timing.t_erase_ns, priority, completion)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {kind}")

    # -- single-op execution -------------------------------------------------------
    def execute(self, op: FlashOp):
        """Generator: run one op to completion (``yield from`` this).

        With a QoS bound attached, the op first waits for one of the
        channel's admission slots; the queue the planes and bus see
        stays shallow and the wait lands on the issuer as backpressure.
        """
        if op.address.channel != self.channel:
            raise ValueError(
                f"op for channel {op.address.channel} sent to engine "
                f"{self.channel}"
            )
        if self.fast_ok():
            done = Event(self.sim)
            self.execute_fast(op, done.succeed)
            yield done
        elif self._qos is None:
            yield from self._execute(op)
        else:
            yield from self._qos.admitted(self._execute(op))

    def _execute(self, op: FlashOp):
        start = self.sim.now
        stall_ns = self.faults.delay_ns(
            STALL, op=op.kind.name.lower(), chip=op.address.chip
        )
        if stall_ns > 0:
            # A controller hiccup: the op sits on the channel doing
            # nothing before contending for resources.
            yield self.sim.timeout(stall_ns)
        priority = self.priorities[op.kind]
        plane = self._planes[(op.address.chip, op.address.plane)]
        timing = self.timing

        if op.kind is OpKind.READ:
            # Sense into the plane register, then stream over the bus.
            wait = yield from self._phase(plane, priority, timing.t_read_ns)
            wait += yield from self._phase(
                self.bus, priority, timing.bus_transfer_ns(op.nbytes)
            )
        elif op.kind is OpKind.PROGRAM:
            # Stream into the chip register, then program the cells.
            wait = yield from self._phase(
                self.bus, priority, timing.bus_transfer_ns(op.nbytes)
            )
            wait += yield from self._phase(plane, priority, timing.t_prog_ns)
        elif op.kind is OpKind.ERASE:
            wait = yield from self._phase(plane, priority, timing.t_erase_ns)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {op.kind}")

        self.ops_executed.add()
        self.wait_ns.add(wait)
        obs = self.obs
        if obs is not None and obs.trace.enabled:
            obs.trace.span(
                f"ch{self.channel}/ops",
                op.kind.name.lower(),
                start,
                self.sim.now,
                chip=op.address.chip,
                plane=op.address.plane,
                block=op.address.block,
                nbytes=op.nbytes,
                wait_ns=wait,
            )

    # -- batch helpers ----------------------------------------------------------------
    def execute_all(self, ops: Iterable[FlashOp]):
        """Generator: run ops concurrently, finish when all complete.

        Plane and bus resources serialize exactly where the hardware
        would; everything else overlaps.
        """
        # Pre-materialize: a generator argument would be consumed while
        # scheduling, leaving a retry/re-submission silently empty.
        ops = list(ops)
        processes = [self.sim.process(self.execute(op)) for op in ops]
        if processes:
            yield AllOf(self.sim, processes)

    def execute_batch(self, ops: Iterable[FlashOp]):
        """Generator: run ops concurrently behind ONE completion event.

        The batch is coalesced per (chip, plane) on the reservation
        timelines: each op costs a phase-boundary callback per phase
        instead of a full process, and the whole batch completes through
        a single shared event.  Falls back to :meth:`execute_all`
        (identical semantics, one process per op) whenever the fast
        path is ineligible.
        """
        ops = list(ops)
        if not ops:
            return
        if not self.fast_ok():
            yield from self.execute_all(ops)
            return
        if len(ops) >= 8:
            # Batch-warm the memoized bus-cost table with one numpy
            # pass (observationally neutral cache fill).
            vector.prefill_bus_costs(self.timing, self._bus_ns_cache, ops)
        if (
            self._fast_plan == _PLAN_PLAIN
            and self._obs is None
            and self.faults is NULL_INJECTOR
            and vector.erase_batch_ready(ops)
        ):
            # All-ERASE batch with nothing observing mid-batch: compute
            # every grant/end in closed form (numpy cumsum per plane)
            # and schedule one shared countdown instead of per-op
            # closures.  Event-for-event identical to the loop below.
            done = Event(self.sim)
            vector.schedule_erase_batch(self, ops, done.succeed)
            yield done
            return
        done = Event(self.sim)
        remaining = [len(ops)]

        def one_done():
            remaining[0] -= 1
            if not remaining[0]:
                done.succeed()

        for op in ops:
            if op.address.channel != self.channel:
                raise ValueError(
                    f"op for channel {op.address.channel} sent to engine "
                    f"{self.channel}"
                )
            self.execute_fast(op, one_done)
        yield done

    def execute_sequential(self, ops: Iterable[FlashOp]):
        """Generator: run ops strictly one after another."""
        for op in ops:
            yield from self.execute(op)


def build_engines(
    sim: Simulator,
    n_channels: int,
    geometry: FlashGeometry,
    timing: NandTiming,
    chips_per_channel: int = 2,
    priorities: Optional[Dict[OpKind, int]] = None,
    mode: Optional[str] = None,
) -> List[ChannelEngine]:
    """One engine per channel, sharing nothing."""
    return [
        ChannelEngine(
            sim, channel, geometry, timing, chips_per_channel, priorities,
            mode=mode,
        )
        for channel in range(n_channels)
    ]

"""Per-channel timed execution of flash operations."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.injector import NULL_INJECTOR, STALL
from repro.ftl.ops import FlashOp, OpKind
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim import AllOf, PriorityResource, Simulator
from repro.sim.stats import Counter

#: Default service priorities (lower = sooner).  The base policy is
#: FIFO-equal; the paper's future-work scheduler prioritizes on-demand
#: reads over writes and erases, which `repro.core.scheduler` enables by
#: passing custom priorities.
OP_PRIORITIES: Dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.PROGRAM: 0,
    OpKind.ERASE: 0,
}


class ChannelEngine:
    """Charges simulated time for FlashOps on one channel.

    The engine knows nothing about FTLs or data -- it only models the
    hardware contention of one channel: a single shared bus and one
    resource per (chip, plane).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: int,
        geometry: FlashGeometry,
        timing: NandTiming,
        chips_per_channel: int = 2,
        priorities: Optional[Dict[OpKind, int]] = None,
    ):
        self.sim = sim
        self.channel = channel
        self.geometry = geometry
        self.timing = timing
        self.priorities = dict(OP_PRIORITIES if priorities is None else priorities)
        self.bus = PriorityResource(sim, capacity=1, name=f"ch{channel}/bus")
        self._planes: Dict[Tuple[int, int], PriorityResource] = {
            (chip, plane): PriorityResource(
                sim, capacity=1, name=f"ch{channel}/chip{chip}.plane{plane}"
            )
            for chip in range(chips_per_channel)
            for plane in range(geometry.planes_per_chip)
        }
        self.ops_executed = Counter(f"channel{channel}.ops")
        #: Time the channel had at least one op *in service* (holding a
        #: plane or the bus) -- queue wait excluded, concurrent service
        #: on several planes counted once, so busy_ns / elapsed <= 1.
        self.busy_ns = Counter(f"channel{channel}.busy")
        #: Total queue wait summed over ops; can exceed wall-clock time
        #: when many ops wait concurrently.
        self.wait_ns = Counter(f"channel{channel}.wait")
        #: Optional :class:`repro.obs.Observability`; set by
        #: ``repro.obs.attach_device``.  None keeps all hooks no-ops.
        self.obs = None
        #: Fault-injection handle (channel ``stall`` latency spikes);
        #: :data:`~repro.faults.injector.NULL_INJECTOR` unless wired.
        self.faults = NULL_INJECTOR
        #: Optional :class:`repro.qos.limits.ChannelQosState` bounding
        #: the ops admitted to this channel; set by
        #: ``repro.qos.attach_device_qos``.  None keeps admission free.
        self.qos = None
        self._in_service = 0
        self._busy_since = 0
        self._queued = 0

    def plane_resource(self, chip: int, plane: int) -> PriorityResource:
        """The contention resource for one (chip, plane)."""
        return self._planes[(chip, plane)]

    # -- accounting --------------------------------------------------------------
    def utilization(self, now_ns: Optional[int] = None) -> float:
        """Fraction of elapsed time with at least one op in service.

        Always in [0, 1]: queue wait is excluded and overlapping service
        intervals are merged before integrating.
        """
        now = self.sim.now if now_ns is None else now_ns
        if now <= 0:
            return 0.0
        busy = self.busy_ns.value
        if self._in_service:
            busy += now - self._busy_since
        return busy / now

    def _service_begin(self, now: int) -> None:
        if self._in_service == 0:
            self._busy_since = now
        self._in_service += 1

    def _service_end(self, now: int) -> None:
        self._in_service -= 1
        if self._in_service == 0:
            self.busy_ns.add(now - self._busy_since)

    def _phase(self, resource: PriorityResource, priority: int, duration_ns: int):
        """Generator: acquire a resource, hold it for the service time.

        Returns the queue wait (grant time minus request time), which is
        accounted separately from service so utilisation stays honest.
        """
        queued = self.sim.now
        obs = self.obs
        depth = None
        if obs is not None:
            depth = obs.metrics.time_weighted(
                f"channel{self.channel}.queue_depth"
            )
            self._queued += 1
            depth.update(queued, self._queued)
        with resource.request(priority) as hold:
            yield hold
            granted = self.sim.now
            if depth is not None:
                self._queued -= 1
                depth.update(granted, self._queued)
            self._service_begin(granted)
            try:
                yield self.sim.timeout(duration_ns)
            finally:
                self._service_end(self.sim.now)
        return granted - queued

    # -- single-op execution -------------------------------------------------------
    def execute(self, op: FlashOp):
        """Generator: run one op to completion (``yield from`` this).

        With a QoS bound attached, the op first waits for one of the
        channel's admission slots; the queue the planes and bus see
        stays shallow and the wait lands on the issuer as backpressure.
        """
        if op.address.channel != self.channel:
            raise ValueError(
                f"op for channel {op.address.channel} sent to engine "
                f"{self.channel}"
            )
        if self.qos is None:
            yield from self._execute(op)
        else:
            yield from self.qos.admitted(self._execute(op))

    def _execute(self, op: FlashOp):
        start = self.sim.now
        stall_ns = self.faults.delay_ns(
            STALL, op=op.kind.name.lower(), chip=op.address.chip
        )
        if stall_ns > 0:
            # A controller hiccup: the op sits on the channel doing
            # nothing before contending for resources.
            yield self.sim.timeout(stall_ns)
        priority = self.priorities[op.kind]
        plane = self._planes[(op.address.chip, op.address.plane)]
        timing = self.timing

        if op.kind is OpKind.READ:
            # Sense into the plane register, then stream over the bus.
            wait = yield from self._phase(plane, priority, timing.t_read_ns)
            wait += yield from self._phase(
                self.bus, priority, timing.bus_transfer_ns(op.nbytes)
            )
        elif op.kind is OpKind.PROGRAM:
            # Stream into the chip register, then program the cells.
            wait = yield from self._phase(
                self.bus, priority, timing.bus_transfer_ns(op.nbytes)
            )
            wait += yield from self._phase(plane, priority, timing.t_prog_ns)
        elif op.kind is OpKind.ERASE:
            wait = yield from self._phase(plane, priority, timing.t_erase_ns)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {op.kind}")

        self.ops_executed.add()
        self.wait_ns.add(wait)
        obs = self.obs
        if obs is not None and obs.trace.enabled:
            obs.trace.span(
                f"ch{self.channel}/ops",
                op.kind.name.lower(),
                start,
                self.sim.now,
                chip=op.address.chip,
                plane=op.address.plane,
                block=op.address.block,
                nbytes=op.nbytes,
                wait_ns=wait,
            )

    # -- batch helpers ----------------------------------------------------------------
    def execute_all(self, ops: Iterable[FlashOp]):
        """Generator: run ops concurrently, finish when all complete.

        Plane and bus resources serialize exactly where the hardware
        would; everything else overlaps.
        """
        processes = [self.sim.process(self.execute(op)) for op in ops]
        if processes:
            yield AllOf(self.sim, processes)

    def execute_sequential(self, ops: Iterable[FlashOp]):
        """Generator: run ops strictly one after another."""
        for op in ops:
            yield from self.execute(op)


def build_engines(
    sim: Simulator,
    n_channels: int,
    geometry: FlashGeometry,
    timing: NandTiming,
    chips_per_channel: int = 2,
    priorities: Optional[Dict[OpKind, int]] = None,
) -> List[ChannelEngine]:
    """One engine per channel, sharing nothing."""
    return [
        ChannelEngine(
            sim, channel, geometry, timing, chips_per_channel, priorities
        )
        for channel in range(n_channels)
    ]

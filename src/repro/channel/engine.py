"""Per-channel timed execution of flash operations."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ftl.ops import FlashOp, OpKind
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim import AllOf, PriorityResource, Simulator
from repro.sim.stats import Counter

#: Default service priorities (lower = sooner).  The base policy is
#: FIFO-equal; the paper's future-work scheduler prioritizes on-demand
#: reads over writes and erases, which `repro.core.scheduler` enables by
#: passing custom priorities.
OP_PRIORITIES: Dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.PROGRAM: 0,
    OpKind.ERASE: 0,
}


class ChannelEngine:
    """Charges simulated time for FlashOps on one channel.

    The engine knows nothing about FTLs or data -- it only models the
    hardware contention of one channel: a single shared bus and one
    resource per (chip, plane).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: int,
        geometry: FlashGeometry,
        timing: NandTiming,
        chips_per_channel: int = 2,
        priorities: Optional[Dict[OpKind, int]] = None,
    ):
        self.sim = sim
        self.channel = channel
        self.geometry = geometry
        self.timing = timing
        self.priorities = dict(OP_PRIORITIES if priorities is None else priorities)
        self.bus = PriorityResource(sim, capacity=1)
        self._planes: Dict[Tuple[int, int], PriorityResource] = {
            (chip, plane): PriorityResource(sim, capacity=1)
            for chip in range(chips_per_channel)
            for plane in range(geometry.planes_per_chip)
        }
        self.ops_executed = Counter(f"channel{channel}.ops")
        self.busy_ns = Counter(f"channel{channel}.busy")

    def plane_resource(self, chip: int, plane: int) -> PriorityResource:
        """The contention resource for one (chip, plane)."""
        return self._planes[(chip, plane)]

    # -- single-op execution -------------------------------------------------------
    def execute(self, op: FlashOp):
        """Generator: run one op to completion (``yield from`` this)."""
        if op.address.channel != self.channel:
            raise ValueError(
                f"op for channel {op.address.channel} sent to engine "
                f"{self.channel}"
            )
        start = self.sim.now
        priority = self.priorities[op.kind]
        plane = self._planes[(op.address.chip, op.address.plane)]
        timing = self.timing

        if op.kind is OpKind.READ:
            # Sense into the plane register, then stream over the bus.
            with plane.request(priority) as hold:
                yield hold
                yield self.sim.timeout(timing.t_read_ns)
            with self.bus.request(priority) as hold:
                yield hold
                yield self.sim.timeout(timing.bus_transfer_ns(op.nbytes))
        elif op.kind is OpKind.PROGRAM:
            # Stream into the chip register, then program the cells.
            with self.bus.request(priority) as hold:
                yield hold
                yield self.sim.timeout(timing.bus_transfer_ns(op.nbytes))
            with plane.request(priority) as hold:
                yield hold
                yield self.sim.timeout(timing.t_prog_ns)
        elif op.kind is OpKind.ERASE:
            with plane.request(priority) as hold:
                yield hold
                yield self.sim.timeout(timing.t_erase_ns)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {op.kind}")

        self.ops_executed.add()
        self.busy_ns.add(self.sim.now - start)

    # -- batch helpers ----------------------------------------------------------------
    def execute_all(self, ops: Iterable[FlashOp]):
        """Generator: run ops concurrently, finish when all complete.

        Plane and bus resources serialize exactly where the hardware
        would; everything else overlaps.
        """
        processes = [self.sim.process(self.execute(op)) for op in ops]
        if processes:
            yield AllOf(self.sim, processes)

    def execute_sequential(self, ops: Iterable[FlashOp]):
        """Generator: run ops strictly one after another."""
        for op in ops:
            yield from self.execute(op)


def build_engines(
    sim: Simulator,
    n_channels: int,
    geometry: FlashGeometry,
    timing: NandTiming,
    chips_per_channel: int = 2,
    priorities: Optional[Dict[OpKind, int]] = None,
) -> List[ChannelEngine]:
    """One engine per channel, sharing nothing."""
    return [
        ChannelEngine(
            sim, channel, geometry, timing, chips_per_channel, priorities
        )
        for channel in range(n_channels)
    ]

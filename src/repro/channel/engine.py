"""Per-channel timed execution of flash operations.

Two scheduling modes produce byte-identical results (see
DESIGN.md "Scheduling modes"):

* the **generator** path models the bus and every (chip, plane) as a
  :class:`~repro.sim.resources.PriorityResource` and runs one process
  per op;
* the **timeline** fast path computes the same grant/end instants
  analytically against per-resource
  :class:`~repro.sim.timeline.ResourceTimeline` objects and schedules
  only a phase-boundary callback per phase plus one completion event
  per op (or per batch).

``mode`` is ``"auto"`` (fast when equivalence is provable, generator
otherwise), ``"generator"`` or ``"timeline"``; the ``REPRO_SIM_MODE``
environment variable overrides the default for a whole run.
"""

from __future__ import annotations

import os
from heapq import heappush
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.injector import NULL_INJECTOR, STALL
from repro.ftl.ops import FlashOp, OpKind
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim import AllOf, Event, PriorityResource, Simulator
from repro.sim.engine import _PhaseEnd
from repro.sim.stats import Counter
from repro.sim.timeline import BusyUnion, ResourceTimeline

#: Default service priorities (lower = sooner).  The base policy is
#: FIFO-equal; the paper's future-work scheduler prioritizes on-demand
#: reads over writes and erases, which `repro.core.scheduler` enables by
#: passing custom priorities.
OP_PRIORITIES: Dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.PROGRAM: 0,
    OpKind.ERASE: 0,
}

_MODES = ("auto", "generator", "timeline")


class _BusyCounterView:
    """Counter-compatible read view over an engine's busy time.

    The generator path accrues into a plain counter while the timeline
    path records reservation intervals; this view sums both so existing
    ``engine.busy_ns.value`` consumers work unchanged in either mode.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "ChannelEngine"):
        self._engine = engine

    @property
    def name(self) -> str:
        return self._engine._busy_counter.name

    @property
    def value(self) -> int:
        return self._engine.busy_value()

    def __repr__(self):
        return f"Counter({self.name!r}, value={self.value})"


def default_engine_mode() -> str:
    """The scheduling mode new engines start in.

    ``REPRO_SIM_MODE`` (``auto``/``generator``/``timeline``) is the
    run-wide escape hatch; unset means ``auto``.
    """
    mode = os.environ.get("REPRO_SIM_MODE", "auto")
    if mode not in _MODES:
        raise ValueError(
            f"REPRO_SIM_MODE must be one of {_MODES}, got {mode!r}"
        )
    return mode


class ChannelEngine:
    """Charges simulated time for FlashOps on one channel.

    The engine knows nothing about FTLs or data -- it only models the
    hardware contention of one channel: a single shared bus and one
    resource per (chip, plane).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: int,
        geometry: FlashGeometry,
        timing: NandTiming,
        chips_per_channel: int = 2,
        priorities: Optional[Dict[OpKind, int]] = None,
        mode: Optional[str] = None,
    ):
        self.sim = sim
        self.channel = channel
        self.geometry = geometry
        self.timing = timing
        self.priorities = dict(OP_PRIORITIES if priorities is None else priorities)
        self.mode = default_engine_mode() if mode is None else mode
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        self.bus = PriorityResource(sim, capacity=1, name=f"ch{channel}/bus")
        self._planes: Dict[Tuple[int, int], PriorityResource] = {
            (chip, plane): PriorityResource(
                sim, capacity=1, name=f"ch{channel}/chip{chip}.plane{plane}"
            )
            for chip in range(chips_per_channel)
            for plane in range(geometry.planes_per_chip)
        }
        #: Timeline mirrors of the resources above, used by the fast path.
        self._tl_bus = ResourceTimeline()
        self._tl_planes: Dict[Tuple[int, int], ResourceTimeline] = {
            key: ResourceTimeline() for key in self._planes
        }
        self._busy_union = BusyUnion()
        #: Uniform priorities are a fast-path precondition: with equal
        #: priorities a PriorityResource degenerates to FIFO, which is
        #: what the analytic timelines compute.
        self._uniform_priorities = len(set(self.priorities.values())) == 1
        self.ops_executed = Counter(f"channel{channel}.ops")
        #: Generator-path accrual of channel busy time; the public view
        #: combining it with the fast path's interval union is
        #: :attr:`busy_ns` / :meth:`busy_value`.
        self._busy_counter = Counter(f"channel{channel}.busy")
        #: Total queue wait summed over ops; can exceed wall-clock time
        #: when many ops wait concurrently.
        self.wait_ns = Counter(f"channel{channel}.wait")
        #: Optional :class:`repro.obs.Observability`; set by
        #: ``repro.obs.attach_device``.  None keeps all hooks no-ops.
        self.obs = None
        #: Fault-injection handle (channel ``stall`` latency spikes);
        #: :data:`~repro.faults.injector.NULL_INJECTOR` unless wired.
        self.faults = NULL_INJECTOR
        #: Optional :class:`repro.qos.limits.ChannelQosState` bounding
        #: the ops admitted to this channel; set by
        #: ``repro.qos.attach_device_qos``.  None keeps admission free.
        self.qos = None
        self._in_service = 0
        self._busy_since = 0
        self._queued = 0
        self._depth_metric = None
        #: Memoized bus_transfer_ns per payload size (hot path).
        self._bus_ns_cache: Dict[int, int] = {}

    def plane_resource(self, chip: int, plane: int) -> PriorityResource:
        """The contention resource for one (chip, plane)."""
        return self._planes[(chip, plane)]

    # -- fast-path eligibility ---------------------------------------------------
    def fast_ok(self) -> bool:
        """True when ops may take the timeline fast path right now.

        The fast path falls back to the generator path whenever
        equivalence cannot be guaranteed: forced generator mode,
        non-uniform op priorities (queue order would not be FIFO), an
        attached QoS admission bound (its slot resource interleaves with
        the phases), or enabled tracing (spans are emitted from inside
        resource holds the fast path never creates).
        """
        if self.mode == "generator" or not self._uniform_priorities:
            return False
        if self.qos is not None:
            return False
        obs = self.sim.obs
        return obs is None or not obs.trace.enabled

    # -- accounting --------------------------------------------------------------
    def utilization(self, now_ns: Optional[int] = None) -> float:
        """Fraction of elapsed time with at least one op in service.

        Always in [0, 1]: queue wait is excluded and overlapping service
        intervals are merged before integrating.  Both scheduling modes
        feed this: the generator path through the live in-service
        counter, the timeline path through the reservation interval
        union.
        """
        now = self.sim.now if now_ns is None else now_ns
        if now <= 0:
            return 0.0
        busy = self._busy_counter.value + self._busy_union.busy_through(now)
        if self._in_service:
            busy += now - self._busy_since
        return busy / now

    @property
    def busy_ns(self) -> "_BusyCounterView":
        """Time the channel had at least one op *in service* (holding a
        plane or the bus) -- queue wait excluded, concurrent service on
        several planes counted once, so ``busy_ns.value / elapsed <= 1``.
        A live view valid in both scheduling modes."""
        return _BusyCounterView(self)

    def busy_value(self, now_ns: Optional[int] = None) -> int:
        """Closed busy time (ns) through ``now``, mode-independent.

        Equals the generator path's ``busy_ns`` counter: service
        intervals count once they have fully ended; the currently open
        interval (if any) is excluded, exactly as the counter excludes
        in-flight service.
        """
        now = self.sim.now if now_ns is None else now_ns
        return self._busy_counter.value + self._busy_union.closed_through(now)

    def _service_begin(self, now: int) -> None:
        if self._in_service == 0:
            self._busy_since = now
        self._in_service += 1

    def _service_end(self, now: int) -> None:
        self._in_service -= 1
        if self._in_service == 0:
            self._busy_counter.add(now - self._busy_since)

    def _phase(self, resource: PriorityResource, priority: int, duration_ns: int):
        """Generator: acquire a resource, hold it for the service time.

        Returns the queue wait (grant time minus request time), which is
        accounted separately from service so utilisation stays honest.
        """
        queued = self.sim.now
        obs = self.obs
        depth = None
        if obs is not None:
            depth = obs.metrics.time_weighted(
                f"channel{self.channel}.queue_depth"
            )
            self._queued += 1
            depth.update(queued, self._queued)
        with resource.request(priority) as hold:
            yield hold
            granted = self.sim.now
            if depth is not None:
                self._queued -= 1
                depth.update(granted, self._queued)
            self._service_begin(granted)
            try:
                yield self.sim.hold(duration_ns)
            finally:
                self._service_end(self.sim.now)
        return granted - queued

    # -- timeline fast path --------------------------------------------------------
    def _phase_fast(self, timeline: ResourceTimeline, duration_ns: int, fn):
        """Reserve one phase at sim-now, running ``fn`` at its end.

        Mirrors one generator-path ``_phase``: the queue-depth metric
        sees the request at now and the grant at its (possibly future)
        instant, the busy union records the service interval, and ``fn``
        fires at the end instant with slow-path tie ordering.  Returns
        ``(grant, end)``.
        """
        # ResourceTimeline.reserve_and_call inlined: this is the hottest
        # call site in timeline mode and the extra frames are measurable.
        sim = self.sim
        now = sim._now
        free = timeline.free_at
        grant = free if free > now else now
        end = grant + duration_ns
        timeline.free_at = end
        hooks = []
        if grant <= now:
            pool = sim._phase_pool
            if pool:
                event = pool.pop()
                event._processed = False
                event._fn = fn
                event._hooks = hooks
            else:
                event = _PhaseEnd(sim, fn, hooks)
            sim._seq += 1
            heappush(sim._heap, (end, sim._seq, event))
        else:
            tail = timeline._tail_hooks
            if tail is None:
                delay = end - grant
                sim._schedule_call(
                    lambda: sim._schedule(sim._phase_event(fn, hooks), delay),
                    grant - now,
                )
            else:
                tail.append((fn, hooks, end - grant))
        timeline._tail_hooks = hooks
        # BusyUnion.add inlined; phase durations are always positive.
        self._busy_union._raw.append([grant, end])
        if self.obs is not None:
            self._depth_track(now, grant)
        return grant, end

    def _depth_track(self, request_ns: int, grant_ns: int) -> None:
        depth = self._depth_metric
        if depth is None:
            depth = self._depth_metric = self.obs.metrics.time_weighted(
                f"channel{self.channel}.queue_depth"
            )
        self._queued += 1
        depth.update(request_ns, self._queued)
        if grant_ns <= request_ns:
            self._queued -= 1
            depth.update(request_ns, self._queued)
        else:

            def granted():
                self._queued -= 1
                depth.update(grant_ns, self._queued)

            self.sim._schedule_call(granted, grant_ns - request_ns)

    def execute_fast(self, op: FlashOp, then=None) -> None:
        """Timeline-schedule one op; only call when :meth:`fast_ok`.

        ``then()`` (if given) runs at the op's completion instant --
        after the engine's counters update -- with generator-equivalent
        tie ordering, so callers can chain further reservations (link
        DMA, batch completions) exactly where the slow path would.
        """
        faults = self.faults
        if faults is NULL_INJECTOR:
            self._fast_phases(op, then)
            return
        stall_ns = faults.delay_ns(
            STALL, op=op.kind.name.lower(), chip=op.address.chip
        )
        if stall_ns > 0:
            # The generator path sleeps the stall before contending;
            # defer the reservations to the same instant.
            self.sim._schedule_call(
                lambda: self._fast_phases(op, then), stall_ns
            )
        else:
            self._fast_phases(op, then)

    def _fast_phases(self, op: FlashOp, then) -> None:
        sim = self.sim
        timing = self.timing
        plane_tl = self._tl_planes[(op.address.chip, op.address.plane)]
        request = sim._now
        kind = op.kind

        cache = self._bus_ns_cache
        bus_ns = cache.get(op.nbytes)
        if bus_ns is None:
            bus_ns = cache[op.nbytes] = timing.bus_transfer_ns(op.nbytes)

        if kind is OpKind.READ:

            def bus_phase():
                request2 = sim._now

                def read_done():
                    self.ops_executed.add()
                    self.wait_ns.add(
                        (grant1 - request) + (grant2 - request2)
                    )
                    if then is not None:
                        then()

                grant2, _ = self._phase_fast(self._tl_bus, bus_ns, read_done)

            grant1, _ = self._phase_fast(plane_tl, timing.t_read_ns, bus_phase)
        elif kind is OpKind.PROGRAM:

            def plane_phase():
                request2 = sim._now

                def program_done():
                    self.ops_executed.add()
                    self.wait_ns.add(
                        (grant1 - request) + (grant2 - request2)
                    )
                    if then is not None:
                        then()

                grant2, _ = self._phase_fast(
                    plane_tl, timing.t_prog_ns, program_done
                )

            grant1, _ = self._phase_fast(self._tl_bus, bus_ns, plane_phase)
        elif kind is OpKind.ERASE:

            def erase_done():
                self.ops_executed.add()
                self.wait_ns.add(grant1 - request)
                if then is not None:
                    then()

            grant1, _ = self._phase_fast(
                plane_tl, timing.t_erase_ns, erase_done
            )
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {kind}")

    # -- single-op execution -------------------------------------------------------
    def execute(self, op: FlashOp):
        """Generator: run one op to completion (``yield from`` this).

        With a QoS bound attached, the op first waits for one of the
        channel's admission slots; the queue the planes and bus see
        stays shallow and the wait lands on the issuer as backpressure.
        """
        if op.address.channel != self.channel:
            raise ValueError(
                f"op for channel {op.address.channel} sent to engine "
                f"{self.channel}"
            )
        if self.fast_ok():
            done = Event(self.sim)
            self.execute_fast(op, done.succeed)
            yield done
        elif self.qos is None:
            yield from self._execute(op)
        else:
            yield from self.qos.admitted(self._execute(op))

    def _execute(self, op: FlashOp):
        start = self.sim.now
        stall_ns = self.faults.delay_ns(
            STALL, op=op.kind.name.lower(), chip=op.address.chip
        )
        if stall_ns > 0:
            # A controller hiccup: the op sits on the channel doing
            # nothing before contending for resources.
            yield self.sim.timeout(stall_ns)
        priority = self.priorities[op.kind]
        plane = self._planes[(op.address.chip, op.address.plane)]
        timing = self.timing

        if op.kind is OpKind.READ:
            # Sense into the plane register, then stream over the bus.
            wait = yield from self._phase(plane, priority, timing.t_read_ns)
            wait += yield from self._phase(
                self.bus, priority, timing.bus_transfer_ns(op.nbytes)
            )
        elif op.kind is OpKind.PROGRAM:
            # Stream into the chip register, then program the cells.
            wait = yield from self._phase(
                self.bus, priority, timing.bus_transfer_ns(op.nbytes)
            )
            wait += yield from self._phase(plane, priority, timing.t_prog_ns)
        elif op.kind is OpKind.ERASE:
            wait = yield from self._phase(plane, priority, timing.t_erase_ns)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown op kind {op.kind}")

        self.ops_executed.add()
        self.wait_ns.add(wait)
        obs = self.obs
        if obs is not None and obs.trace.enabled:
            obs.trace.span(
                f"ch{self.channel}/ops",
                op.kind.name.lower(),
                start,
                self.sim.now,
                chip=op.address.chip,
                plane=op.address.plane,
                block=op.address.block,
                nbytes=op.nbytes,
                wait_ns=wait,
            )

    # -- batch helpers ----------------------------------------------------------------
    def execute_all(self, ops: Iterable[FlashOp]):
        """Generator: run ops concurrently, finish when all complete.

        Plane and bus resources serialize exactly where the hardware
        would; everything else overlaps.
        """
        # Pre-materialize: a generator argument would be consumed while
        # scheduling, leaving a retry/re-submission silently empty.
        ops = list(ops)
        processes = [self.sim.process(self.execute(op)) for op in ops]
        if processes:
            yield AllOf(self.sim, processes)

    def execute_batch(self, ops: Iterable[FlashOp]):
        """Generator: run ops concurrently behind ONE completion event.

        The batch is coalesced per (chip, plane) on the reservation
        timelines: each op costs a phase-boundary callback per phase
        instead of a full process, and the whole batch completes through
        a single shared event.  Falls back to :meth:`execute_all`
        (identical semantics, one process per op) whenever the fast
        path is ineligible.
        """
        ops = list(ops)
        if not ops:
            return
        if not self.fast_ok():
            yield from self.execute_all(ops)
            return
        done = Event(self.sim)
        remaining = [len(ops)]

        def one_done():
            remaining[0] -= 1
            if not remaining[0]:
                done.succeed()

        for op in ops:
            if op.address.channel != self.channel:
                raise ValueError(
                    f"op for channel {op.address.channel} sent to engine "
                    f"{self.channel}"
                )
            self.execute_fast(op, one_done)
        yield done

    def execute_sequential(self, ops: Iterable[FlashOp]):
        """Generator: run ops strictly one after another."""
        for op in ops:
            yield from self.execute(op)


def build_engines(
    sim: Simulator,
    n_channels: int,
    geometry: FlashGeometry,
    timing: NandTiming,
    chips_per_channel: int = 2,
    priorities: Optional[Dict[OpKind, int]] = None,
    mode: Optional[str] = None,
) -> List[ChannelEngine]:
    """One engine per channel, sharing nothing."""
    return [
        ChannelEngine(
            sim, channel, geometry, timing, chips_per_channel, priorities,
            mode=mode,
        )
        for channel in range(n_channels)
    ]

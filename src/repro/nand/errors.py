"""Raw bit error rate (RBER) model and uncorrectable-page probability.

The paper removes cross-channel parity and relies on per-chip BCH plus
system-level replication (S2.2): "during the six months since over 2000
704GB SDFs were deployed ... there has been only one data error that
could not be corrected by BCH".  To reason about that claim we model:

* RBER as a function of wear (P/E cycles) -- an exponential-in-wear fit
  commonly used for MLC NAND;
* the probability that a page is uncorrectable given a BCH code that
  fixes up to ``t`` bit errors per codeword.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RawBitErrorModel:
    """RBER(pe_cycles) = base_rber * growth ** (pe_cycles / endurance).

    Defaults approximate 25 nm MLC: ~1e-6 RBER when new, rising roughly
    two orders of magnitude by rated endurance (3000 P/E cycles).
    """

    base_rber: float = 1e-6
    growth: float = 100.0
    endurance: int = 3000

    def __post_init__(self):
        if self.base_rber <= 0 or self.base_rber >= 1:
            raise ValueError(f"base_rber {self.base_rber} outside (0,1)")
        if self.growth < 1:
            raise ValueError(f"growth must be >= 1, got {self.growth}")
        if self.endurance <= 0:
            raise ValueError(f"endurance must be positive, got {self.endurance}")

    def rber(self, pe_cycles: int) -> float:
        """Raw bit error rate after ``pe_cycles`` program/erase cycles."""
        if pe_cycles < 0:
            raise ValueError(f"negative P/E cycle count {pe_cycles}")
        # Work in log space to avoid overflow at extreme wear levels.
        log_rate = math.log(self.base_rber) + (
            pe_cycles / self.endurance
        ) * math.log(self.growth)
        if log_rate >= math.log(0.5):
            return 0.5
        return math.exp(log_rate)


def _binomial_tail(n: int, p: float, t: int) -> float:
    """P(X > t) for X ~ Binomial(n, p), numerically-stable for tiny p.

    Computed by summing P(X = k) for k <= t in log space and subtracting
    from 1; for the small p regime we care about, the complementary sum
    is well-conditioned.
    """
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0 if t < n else 0.0
    if t >= n:
        return 0.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    log_coeff = 0.0  # log C(n, 0)
    for k in range(t + 1):
        if k > 0:
            log_coeff += math.log(n - k + 1) - math.log(k)
        total += math.exp(log_coeff + k * log_p + (n - k) * log_q)
    return max(0.0, 1.0 - total)


def codeword_failure_probability(
    codeword_bits: int, rber: float, t: int
) -> float:
    """P(more than ``t`` bit errors in a ``codeword_bits``-bit codeword)."""
    if codeword_bits <= 0:
        raise ValueError("codeword_bits must be positive")
    if t < 0:
        raise ValueError("t must be >= 0")
    return _binomial_tail(codeword_bits, rber, t)


def page_failure_probability(
    page_bytes: int,
    rber: float,
    t: int,
    codeword_bytes: int = 512,
) -> float:
    """P(page read is uncorrectable) for a page split into BCH codewords.

    The SDF protects each flash chip with a BCH codec sized per 512-byte
    sector (a common arrangement; the paper notes 25% of each Spartan-6
    is the BCH codec).  A page fails if *any* of its codewords has more
    than ``t`` raw bit errors.
    """
    if page_bytes <= 0 or codeword_bytes <= 0:
        raise ValueError("sizes must be positive")
    n_codewords = max(1, math.ceil(page_bytes / codeword_bytes))
    p_cw = codeword_failure_probability(codeword_bytes * 8, rber, t)
    # 1 - (1 - p)^n, stable for tiny p.
    return -math.expm1(n_codewords * math.log1p(-p_cw)) if p_cw < 1 else 1.0

"""Functional NAND chip state machine.

Enforces the physical constraints that drive the whole paper:

* a page can only be programmed when its block has been erased since the
  page was last written (out-of-place update);
* pages within a block must be programmed **sequentially** (a NAND
  requirement that makes log-style writing natural);
* erase works on whole blocks and wears them out.

The chip is *functional*: operations mutate state instantly and return.
Timing lives in :mod:`repro.channel.engine`, which wraps these calls in
simulated delays.  Page payloads are arbitrary Python objects -- real
``bytes`` when functional correctness is being tested, lightweight
placeholders in large performance runs.

Blocks are materialized lazily so that a full 704 GB device (44 channels
x 2 chips x 2 planes x 2048 blocks) does not allocate millions of
objects up front.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Optional

import numpy as np

from repro.faults.errors import TransientFault
from repro.faults.injector import (
    ERASE_FAIL,
    NULL_INJECTOR,
    PROGRAM_FAIL,
    READ_UNCORRECTABLE,
)
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming


class FlashError(Exception):
    """Base class for flash programming-model violations."""


class ProgramError(FlashError):
    """Programming a non-erased page, or out of sequential order."""


class WearOutError(FlashError):
    """Operation on a worn-out (bad) block."""


class ProgramFailError(FlashError):
    """A program op failed to verify: the block must be retired.

    The FTL absorbs this (bad-block remap + reprogram); it is not a
    :class:`~repro.faults.errors.TransientFault` because it must never
    escape the device stack to retry/failover code.
    """


class UncorrectableReadError(TransientFault, FlashError):
    """A page read with more bit errors than the per-chip BCH corrects.

    SDF has no on-device parity across chips, so this propagates to the
    host, whose replication layer recovers from another replica (paper
    §2.2).
    """


class PageState(Enum):
    """Lifecycle of one page: erased or programmed."""
    ERASED = "erased"
    PROGRAMMED = "programmed"


class BlockState(Enum):
    """Lifecycle of one block: free/open/full/bad."""
    FREE = "free"  # fully erased, nothing programmed
    OPEN = "open"  # partially programmed
    FULL = "full"  # every page programmed
    BAD = "bad"  # factory-bad or worn out


class Page:
    """A read-only view of one page's state (not stored internally)."""

    __slots__ = ("state", "data")

    def __init__(self, state: PageState, data):
        self.state = state
        self.data = data

    def __repr__(self):
        return f"Page({self.state.value})"


class Block:
    """One erase block: a write frontier plus programmed-page payloads."""

    __slots__ = ("index", "pages_per_block", "erase_count", "_bad", "_write_ptr", "_data")

    def __init__(self, index: int, pages_per_block: int):
        self.index = index
        self.pages_per_block = pages_per_block
        self.erase_count = 0
        self._bad = False
        self._write_ptr = 0  # next page that may be programmed
        self._data: Dict[int, object] = {}

    @property
    def is_bad(self) -> bool:
        """True when the block is unusable."""
        return self._bad

    def mark_bad(self) -> None:
        """Retire the block permanently."""
        self._bad = True
        self._data.clear()

    @property
    def state(self) -> BlockState:
        """Current lifecycle state."""
        if self._bad:
            return BlockState.BAD
        if self._write_ptr == 0:
            return BlockState.FREE
        if self._write_ptr >= self.pages_per_block:
            return BlockState.FULL
        return BlockState.OPEN

    @property
    def write_pointer(self) -> int:
        """Index of the next page that sequential programming will accept."""
        return self._write_ptr

    def page(self, page_index: int) -> Page:
        """Read-only view of one page's state."""
        self._check_page_index(page_index)
        if page_index < self._write_ptr:
            return Page(PageState.PROGRAMMED, self._data.get(page_index))
        return Page(PageState.ERASED, None)

    def read(self, page_index: int):
        """Payload of a programmed page; ``None`` for an erased page."""
        if self._bad:
            raise WearOutError(f"read from bad block {self.index}")
        self._check_page_index(page_index)
        if page_index < self._write_ptr:
            return self._data.get(page_index)
        return None

    def program(self, page_index: int, data) -> None:
        """Program the block's next sequential page."""
        if self._bad:
            raise WearOutError(f"program to bad block {self.index}")
        self._check_page_index(page_index)
        if page_index != self._write_ptr:
            raise ProgramError(
                f"block {self.index}: pages must be programmed sequentially "
                f"(expected page {self._write_ptr}, got {page_index})"
            )
        self._data[page_index] = data
        self._write_ptr += 1

    def erase(self) -> None:
        """Erase the whole block (bumps the erase count)."""
        if self._bad:
            raise WearOutError(f"erase of bad block {self.index}")
        self._data.clear()
        self._write_ptr = 0
        self.erase_count += 1

    def _check_page_index(self, page_index: int) -> None:
        if not 0 <= page_index < self.pages_per_block:
            raise IndexError(
                f"page {page_index} outside block of {self.pages_per_block}"
            )


class Plane:
    """One plane: an independently accessible array of blocks."""

    __slots__ = ("index", "geometry", "_blocks")

    def __init__(self, index: int, geometry: FlashGeometry):
        self.index = index
        self.geometry = geometry
        self._blocks: Dict[int, Block] = {}

    def block(self, block_index: int) -> Block:
        """The block at the given index (materialized lazily)."""
        if not 0 <= block_index < self.geometry.blocks_per_plane:
            raise IndexError(
                f"block {block_index} outside plane of "
                f"{self.geometry.blocks_per_plane}"
            )
        blk = self._blocks.get(block_index)
        if blk is None:
            blk = Block(block_index, self.geometry.pages_per_block)
            self._blocks[block_index] = blk
        return blk

    @property
    def touched_blocks(self) -> int:
        """How many blocks have been materialized (for memory accounting)."""
        return len(self._blocks)


class FlashChip:
    """A NAND chip: planes, with wear tracking and operation counters.

    ``endurance`` (rated P/E cycles) plus an optional RNG drives wear-out:
    beyond the rated endurance each further erase may fail and mark the
    block bad.  With ``endurance=None`` (the default for performance
    experiments) blocks never wear out.
    """

    def __init__(
        self,
        geometry: FlashGeometry = FlashGeometry(),
        timing: NandTiming = NandTiming(),
        chip_id: int = 0,
        rng: Optional[np.random.Generator] = None,
        factory_bad_rate: float = 0.0,
        endurance: Optional[int] = None,
    ):
        if not 0.0 <= factory_bad_rate < 1.0:
            raise ValueError(f"factory_bad_rate {factory_bad_rate} outside [0,1)")
        if endurance is not None and endurance <= 0:
            raise ValueError(f"endurance must be positive, got {endurance}")
        self.geometry = geometry
        self.timing = timing
        self.chip_id = chip_id
        self.endurance = endurance
        self._rng = rng
        self.planes = [Plane(i, geometry) for i in range(geometry.planes_per_chip)]
        self.reads = 0
        self.programs = 0
        self.erases = 0
        #: Fault-injection handle; :data:`~repro.faults.injector.NULL_INJECTOR`
        #: unless a :class:`~repro.faults.plan.FaultPlan` is wired in.
        self.faults = NULL_INJECTOR
        if factory_bad_rate > 0.0:
            self._seed_factory_bad_blocks(factory_bad_rate)

    def _seed_factory_bad_blocks(self, rate: float) -> None:
        rng = self._require_rng()
        for plane in self.planes:
            n_bad = rng.binomial(self.geometry.blocks_per_plane, rate)
            bad = rng.choice(
                self.geometry.blocks_per_plane, size=n_bad, replace=False
            )
            for block_index in bad:
                plane.block(int(block_index)).mark_bad()

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ValueError(
                "this FlashChip configuration needs an rng (factory bad "
                "blocks / finite endurance are stochastic)"
            )
        return self._rng

    # -- addressing ------------------------------------------------------------
    def plane(self, plane_index: int) -> Plane:
        """The plane at the given index."""
        return self.planes[plane_index]

    def block(self, plane_index: int, block_index: int) -> Block:
        """The block at the given index (materialized lazily)."""
        return self.planes[plane_index].block(block_index)

    # -- operations ------------------------------------------------------------
    def read_page(self, plane_index: int, block_index: int, page_index: int):
        """Return the payload of a page (``None`` if erased).

        Raises :class:`UncorrectableReadError` when the fault plane
        injects a beyond-BCH read failure.
        """
        self.reads += 1
        data = self.planes[plane_index].block(block_index).read(page_index)
        if self.faults is NULL_INJECTOR:
            return data
        if (
            self.faults.fires(
                READ_UNCORRECTABLE,
                chip=self.chip_id,
                plane=plane_index,
                block=block_index,
                page=page_index,
            )
            is not None
        ):
            raise UncorrectableReadError(
                f"chip {self.chip_id}: uncorrectable read at "
                f"plane {plane_index} block {block_index} page {page_index}"
            )
        return data

    def program_page(
        self, plane_index: int, block_index: int, page_index: int, data
    ) -> None:
        """Program one page (must be the block's next sequential page).

        An injected program failure retires the block (real NAND retires
        on failed verify) and raises :class:`ProgramFailError` for the
        FTL to remap.
        """
        self.programs += 1
        block = self.planes[plane_index].block(block_index)
        if self.faults is NULL_INJECTOR:
            block.program(page_index, data)
            return
        if (
            self.faults.fires(
                PROGRAM_FAIL,
                chip=self.chip_id,
                plane=plane_index,
                block=block_index,
                page=page_index,
            )
            is not None
        ):
            block.mark_bad()
            raise ProgramFailError(
                f"chip {self.chip_id}: program verify failed at "
                f"plane {plane_index} block {block_index} page {page_index}"
            )
        block.program(page_index, data)

    def erase_block(self, plane_index: int, block_index: int) -> None:
        """Erase a block; may mark it bad once past rated endurance.

        An injected erase failure marks the block bad the same way the
        endurance model does; the FTL's erase path sees ``is_bad`` and
        retires it.
        """
        self.erases += 1
        block = self.block(plane_index, block_index)
        block.erase()
        if (
            self.faults.fires(
                ERASE_FAIL,
                chip=self.chip_id,
                plane=plane_index,
                block=block_index,
            )
            is not None
        ):
            block.mark_bad()
            return
        if self.endurance is not None and block.erase_count > self.endurance:
            # Past rated endurance each erase has an increasing chance of
            # failing to verify; the block is then retired as bad.
            overshoot = block.erase_count - self.endurance
            p_fail = min(1.0, overshoot / self.endurance)
            if self._require_rng().random() < p_fail:
                block.mark_bad()

    def is_bad(self, plane_index: int, block_index: int) -> bool:
        """True when the block is unusable."""
        return self.block(plane_index, block_index).is_bad

    # -- accounting -------------------------------------------------------------
    def max_erase_count(self) -> int:
        """Highest erase count over all touched blocks."""
        return max(
            (b.erase_count for p in self.planes for b in p._blocks.values()),
            default=0,
        )

    def total_erase_count(self) -> int:
        """Sum of erase counts over all touched blocks."""
        return sum(
            b.erase_count for p in self.planes for b in p._blocks.values()
        )

    def __repr__(self):
        return (
            f"FlashChip(id={self.chip_id}, planes={len(self.planes)}, "
            f"reads={self.reads}, programs={self.programs}, "
            f"erases={self.erases})"
        )

"""Flash geometry: how pages, blocks, planes and chips nest.

The SDF board (paper Table 3): 8 KB pages, 2 MB erase blocks, 2 planes
per chip, 2 chips per channel, 44 channels, 16 GB per channel, 704 GB
per device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import KIB


def scaled_count(value: float) -> int:
    """Floor a scaled count without float-truncation off-by-ones.

    ``int(1000 * 0.007)`` is 6: the binary product lands a hair under
    the exact decimal value and plain truncation drops a whole unit.
    Counts within a relative 1e-9 of an integer round to it; genuinely
    fractional products still floor.
    """
    nearest = round(value)
    if abs(value - nearest) <= 1e-9 * max(1.0, abs(nearest)):
        return int(nearest)
    return int(value)


@dataclass(frozen=True)
class FlashGeometry:
    """Static shape of one NAND flash chip."""

    page_size: int = 8 * KIB
    pages_per_block: int = 256
    blocks_per_plane: int = 2048
    planes_per_chip: int = 2

    def __post_init__(self):
        for name in (
            "page_size",
            "pages_per_block",
            "blocks_per_plane",
            "planes_per_chip",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def block_size(self) -> int:
        """Bytes in one erase block."""
        return self.page_size * self.pages_per_block

    @property
    def plane_size(self) -> int:
        """Bytes in one plane."""
        return self.block_size * self.blocks_per_plane

    @property
    def chip_size(self) -> int:
        """Bytes in one chip."""
        return self.plane_size * self.planes_per_chip

    @property
    def blocks_per_chip(self) -> int:
        """Erase blocks in one chip."""
        return self.blocks_per_plane * self.planes_per_chip

    @property
    def pages_per_chip(self) -> int:
        """Pages in one chip."""
        return self.blocks_per_chip * self.pages_per_block

    def scaled(self, factor: float) -> "FlashGeometry":
        """A geometry with ``blocks_per_plane`` scaled by ``factor``.

        Used by tests and fast benchmarks to shrink capacity while keeping
        page/block sizes (and therefore all timing behaviour) identical.
        """
        blocks = max(1, scaled_count(self.blocks_per_plane * factor))
        return FlashGeometry(
            page_size=self.page_size,
            pages_per_block=self.pages_per_block,
            blocks_per_plane=blocks,
            planes_per_chip=self.planes_per_chip,
        )

"""NAND flash substrate.

Models the raw flash hardware that both SDF and the conventional-SSD
baselines are built from: chip/plane/block/page state machines with NAND
programming constraints (erase-before-program, sequential page
programming within a block), datasheet timing parameters, and a
wear-dependent raw-bit-error-rate model feeding the BCH ECC layer.
"""

from repro.nand.array import FlashArray, PhysicalAddress
from repro.nand.catalog import (
    INTEL_25NM_MLC,
    MICRON_25NM_MLC,
    MICRON_34NM_MLC,
    SDF_CHANNEL_GEOMETRY,
    SDF_CHIP_GEOMETRY,
)
from repro.nand.chip import (
    Block,
    BlockState,
    FlashChip,
    FlashError,
    Page,
    PageState,
    Plane,
    ProgramError,
    WearOutError,
)
from repro.nand.errors import (
    RawBitErrorModel,
    page_failure_probability,
)
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming

__all__ = [
    "FlashArray",
    "PhysicalAddress",
    "FlashGeometry",
    "NandTiming",
    "FlashChip",
    "Plane",
    "Block",
    "Page",
    "PageState",
    "BlockState",
    "FlashError",
    "ProgramError",
    "WearOutError",
    "RawBitErrorModel",
    "page_failure_probability",
    "MICRON_25NM_MLC",
    "MICRON_34NM_MLC",
    "INTEL_25NM_MLC",
    "SDF_CHIP_GEOMETRY",
    "SDF_CHANNEL_GEOMETRY",
]

"""NAND datasheet timing parameters.

The numbers that matter to the paper's bandwidth arithmetic:

* ``t_read_ns`` -- cell-to-register sense time (tR).  The paper (S4.3)
  quotes ~75 us for a 25 nm MLC page read.
* ``t_prog_ns`` -- register-to-cell program time (tPROG), ~1.3-1.5 ms
  for 25 nm MLC.
* ``t_erase_ns`` -- block erase (tBERS); the paper (S2.3) quotes ~3 ms
  for a 2 MB block.
* ``bus_mb_per_s`` -- channel interface rate; the SDF/Huawei Gen3 use an
  asynchronous 40 MHz 8-bit interface (~40 MB/s per channel), ONFI 1.x
  async is similar, ONFI 2.x source-synchronous is faster.
* ``bus_overhead_ns`` -- per-operation command/address handshake cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import transfer_ns


@dataclass(frozen=True)
class NandTiming:
    """Timing/throughput parameters of one NAND chip + its channel bus."""

    t_read_ns: int = 75_000  # tR: 75 us (25 nm MLC datasheet)
    t_prog_ns: int = 1_400_000  # tPROG: 1.4 ms
    t_erase_ns: int = 3_000_000  # tBERS: 3 ms (paper S2.3)
    bus_mb_per_s: float = 40.0  # async 40 MHz, 8-bit
    bus_overhead_ns: int = 5_000  # command/address/handshake per op

    def __post_init__(self):
        if min(self.t_read_ns, self.t_prog_ns, self.t_erase_ns) <= 0:
            raise ValueError("NAND op times must be positive")
        if self.bus_mb_per_s <= 0:
            raise ValueError("bus rate must be positive")
        if self.bus_overhead_ns < 0:
            raise ValueError("bus overhead must be >= 0")

    # -- derived quantities -------------------------------------------------
    def bus_transfer_ns(self, nbytes: int) -> int:
        """Time to move ``nbytes`` over the channel bus, incl. handshake."""
        return self.bus_overhead_ns + transfer_ns(nbytes, self.bus_mb_per_s)

    def plane_read_mb_per_s(self, page_size: int) -> float:
        """Sustained cell-read bandwidth of one plane (ignoring the bus)."""
        return page_size / (self.t_read_ns / 1e9) / 1e6

    def plane_program_mb_per_s(self, page_size: int) -> float:
        """Sustained program bandwidth of one plane (ignoring the bus)."""
        return page_size / (self.t_prog_ns / 1e9) / 1e6

    def scaled(self, **overrides) -> "NandTiming":
        """Copy with some fields replaced (for what-if experiments)."""
        return replace(self, **overrides)

"""Named NAND chip configurations used by the device catalog.

Timing values are taken from the paper where stated (tR ~ 75 us for
25 nm MLC, block erase ~ 3 ms, async 40 MHz channel interface) and from
contemporaneous ONFI datasheets otherwise.  tPROG is calibrated so that
the aggregate raw write bandwidths reproduce the paper's Table 1 /
Section 3.2 numbers (SDF raw write 1.01 GB/s over 176 planes).
"""

from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming
from repro.sim.units import KIB

#: Micron 25 nm MLC, 8 GB/chip, 2 planes -- the SDF / Huawei Gen3 chip
#: (paper Table 3: 8 KB page, 2 MB block, 16 GB per 2-chip channel).
SDF_CHIP_GEOMETRY = FlashGeometry(
    page_size=8 * KIB,
    pages_per_block=256,  # 2 MiB erase block
    blocks_per_plane=2048,  # 4 GiB plane, 8 GiB chip
    planes_per_chip=2,
)

#: Convenience alias: geometry of the flash behind one SDF channel
#: (2 chips x 2 planes = 4 planes, 16 GiB).
SDF_CHANNEL_GEOMETRY = SDF_CHIP_GEOMETRY

#: 40 MHz async interface: the "NAND speed" of the mid-range drive and
#: SDF in Table 1.  Raw per-channel read ~ 38 MB/s (bus-limited), raw
#: per-plane write ~ 5.8 MB/s (tPROG-limited).
MICRON_25NM_MLC = NandTiming(
    t_read_ns=75_000,
    t_prog_ns=1_400_000,
    t_erase_ns=3_000_000,
    bus_mb_per_s=40.0,
    bus_overhead_ns=5_000,
)

#: Micron 34 nm MLC with ONFI 1.x async interface -- the high-end
#: (Memblaze Q520-class) drive in Table 1: 32 channels x 16 planes,
#: raw 1600/1500 MB/s.  Reads are bus-limited at ~50 MB/s per channel;
#: writes are tPROG-limited at ~2.93 MB/s per plane (4 KiB pages).
MICRON_34NM_MLC = NandTiming(
    t_read_ns=50_000,
    t_prog_ns=1_400_000,
    t_erase_ns=2_500_000,
    bus_mb_per_s=50.0,
    bus_overhead_ns=4_000,
)

#: Geometry of the 34 nm high-end chip: 4 KiB pages, 1 MiB blocks.
HIGH_END_CHIP_GEOMETRY = FlashGeometry(
    page_size=4 * KIB,
    pages_per_block=256,
    blocks_per_plane=2048,
    planes_per_chip=4,
)

#: Intel 320-class 25 nm MLC behind ONFI 2.x -- the low-end drive:
#: 10 channels x 4 planes, raw 300/300 MB/s (SATA-limited on reads).
INTEL_25NM_MLC = NandTiming(
    t_read_ns=75_000,
    t_prog_ns=1_100_000,
    t_erase_ns=3_000_000,
    bus_mb_per_s=133.0,  # ONFI 2.x source-synchronous
    bus_overhead_ns=5_000,
)

#: Geometry of the Intel 320 chip (160 GB drive, 10 channels x 2 chips).
INTEL_320_CHIP_GEOMETRY = FlashGeometry(
    page_size=8 * KIB,
    pages_per_block=256,
    blocks_per_plane=2048,
    planes_per_chip=2,
)

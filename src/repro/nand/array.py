"""A grid of NAND chips addressed by (channel, chip, plane, block, page).

Both device families are built over a :class:`FlashArray`: the SDF uses
44 channels x 2 chips, the Intel-320 baseline 10 channels x 2 chips, etc.
The array provides flat physical-page-number (PPN) packing used by the
numpy-backed mapping tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.nand.chip import FlashChip
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming


@dataclass(frozen=True, slots=True)
class PhysicalAddress:
    """A fully-resolved flash location."""

    channel: int
    chip: int
    plane: int
    block: int
    page: int = 0

    def with_page(self, page: int) -> "PhysicalAddress":
        """Copy of this address pointing at another page."""
        return PhysicalAddress(
            self.channel, self.chip, self.plane, self.block, page
        )


class FlashArray:
    """All the flash behind one device."""

    def __init__(
        self,
        channels: int,
        chips_per_channel: int,
        geometry: FlashGeometry,
        timing: NandTiming,
        rng: Optional[np.random.Generator] = None,
        factory_bad_rate: float = 0.0,
        endurance: Optional[int] = None,
    ):
        if channels < 1 or chips_per_channel < 1:
            raise ValueError("channels and chips_per_channel must be >= 1")
        self.n_channels = channels
        self.chips_per_channel = chips_per_channel
        self.geometry = geometry
        self.timing = timing
        self.chips: List[List[FlashChip]] = [
            [
                FlashChip(
                    geometry=geometry,
                    timing=timing,
                    chip_id=channel * chips_per_channel + chip,
                    rng=rng,
                    factory_bad_rate=factory_bad_rate,
                    endurance=endurance,
                )
                for chip in range(chips_per_channel)
            ]
            for channel in range(channels)
        ]

    # -- shape -------------------------------------------------------------------
    @property
    def planes_per_channel(self) -> int:
        """Planes behind one channel."""
        return self.chips_per_channel * self.geometry.planes_per_chip

    @property
    def n_planes(self) -> int:
        """Planes in the whole array."""
        return self.n_channels * self.planes_per_channel

    @property
    def blocks_per_channel(self) -> int:
        """Erase blocks behind one channel."""
        return self.planes_per_channel * self.geometry.blocks_per_plane

    @property
    def n_blocks(self) -> int:
        """Erase blocks in the whole array."""
        return self.n_channels * self.blocks_per_channel

    @property
    def n_pages(self) -> int:
        """Pages in the whole array."""
        return self.n_blocks * self.geometry.pages_per_block

    @property
    def raw_bytes(self) -> int:
        """Total raw capacity of the array."""
        return self.n_pages * self.geometry.page_size

    # -- PPN packing ---------------------------------------------------------------
    def ppn(self, addr: PhysicalAddress) -> int:
        """Flat physical page number for an address."""
        geo = self.geometry
        block_index = self.flat_block(addr)
        return block_index * geo.pages_per_block + addr.page

    def flat_block(self, addr: PhysicalAddress) -> int:
        """Flat block index (channel-major) for an address."""
        geo = self.geometry
        plane_index = (
            addr.channel * self.planes_per_channel
            + addr.chip * geo.planes_per_chip
            + addr.plane
        )
        return plane_index * geo.blocks_per_plane + addr.block

    def unpack_ppn(self, ppn: int) -> PhysicalAddress:
        """Physical address for a flat physical page number."""
        geo = self.geometry
        page = ppn % geo.pages_per_block
        block_index = ppn // geo.pages_per_block
        return self.unpack_block(block_index).with_page(page)

    def unpack_block(self, flat_block: int) -> PhysicalAddress:
        """Physical address (page 0) for a flat block index."""
        geo = self.geometry
        block = flat_block % geo.blocks_per_plane
        plane_index = flat_block // geo.blocks_per_plane
        plane = plane_index % geo.planes_per_chip
        chip_index = plane_index // geo.planes_per_chip
        chip = chip_index % self.chips_per_channel
        channel = chip_index // self.chips_per_channel
        return PhysicalAddress(channel, chip, plane, block, 0)

    # -- operations (functional) -----------------------------------------------------
    def chip_at(self, channel: int, chip: int) -> FlashChip:
        """The chip at (channel, chip)."""
        return self.chips[channel][chip]

    def read_page(self, addr: PhysicalAddress):
        """Read one page's payload."""
        return self.chips[addr.channel][addr.chip].read_page(
            addr.plane, addr.block, addr.page
        )

    def program_page(self, addr: PhysicalAddress, data) -> None:
        """Program one page with a payload."""
        self.chips[addr.channel][addr.chip].program_page(
            addr.plane, addr.block, addr.page, data
        )

    def erase_block(self, addr: PhysicalAddress) -> None:
        """Erase one block."""
        self.chips[addr.channel][addr.chip].erase_block(addr.plane, addr.block)

    def is_bad(self, addr: PhysicalAddress) -> bool:
        """True when the block is unusable."""
        return self.chips[addr.channel][addr.chip].is_bad(addr.plane, addr.block)

    def erase_count(self, addr: PhysicalAddress) -> int:
        """Erase count of the given block."""
        return (
            self.chips[addr.channel][addr.chip]
            .block(addr.plane, addr.block)
            .erase_count
        )

    # -- aggregate counters -----------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """Page reads across every chip."""
        return sum(c.reads for row in self.chips for c in row)

    @property
    def total_programs(self) -> int:
        """Page programs across every chip."""
        return sum(c.programs for row in self.chips for c in row)

    @property
    def total_erases(self) -> int:
        """Block erases across every chip."""
        return sum(c.erases for row in self.chips for c in row)

"""Actions: the control-plane levers a fired rule pulls.

Each action's ``apply(ctx, rng)`` either reconfigures the system
synchronously (admission limits, migration pacing) and returns a
description string, or returns a *generator* that the engine spawns as
its own simulation process (rebalance passes, slice splits -- work that
takes simulated time and must not block rule evaluation).  While such a
process runs, the owning rule is *busy*: a would-be re-fire is
suppressed without consuming the cooldown, so overlapping migrations
can never be triggered by one rule.

``rng`` is the rule's private :class:`numpy.random.Generator` stream
(seeded from the plan seed and the rule's position), available for
randomised actions; the built-in actions are fully deterministic and
leave it untouched -- which is exactly why a policy run replays
byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import TransientFault
from repro.qos.config import AdmissionConfig, MigrationConfig


def _admission_targets(ctx):
    """Every reachable (name, AdmissionController), deterministically.

    Cluster-attached plans resolve through the controller's node map;
    single-server or single-system plans through the servers bound at
    attach time.  Servers without an admission controller (no QoS plan
    attached) are skipped -- there is nothing to retune.
    """
    seen = []
    names = set()
    ctrl = ctx.controller
    if ctrl is not None:
        for name in sorted(ctrl.nodes):
            admission = ctrl.nodes[name].qos
            if admission is not None:
                seen.append((name, admission))
                names.add(name)
    for name in sorted(ctx.servers):
        admission = ctx.servers[name].qos
        if admission is not None and name not in names:
            seen.append((name, admission))
    return seen


@dataclass(frozen=True)
class SetAdmission:
    """Replace every node's per-class admission limits outright.

    The blunt, predictable lever: "the flash crowd is here, switch to
    the tight profile".  ``None`` keeps a class unlimited.
    """

    max_reads: Optional[int] = None
    max_writes: Optional[int] = None
    max_scans: Optional[int] = None

    def apply(self, ctx, rng) -> str:
        changed = 0
        for _name, admission in _admission_targets(ctx):
            admission.config = replace(
                admission.config,
                max_reads=self.max_reads,
                max_writes=self.max_writes,
                max_scans=self.max_scans,
            )
            changed += 1
        return (
            f"admission := reads={self.max_reads} writes={self.max_writes} "
            f"scans={self.max_scans} on {changed} nodes"
        )


@dataclass(frozen=True)
class ScaleAdmission:
    """Multiply every node's per-class admission limits, clamped.

    The proportional lever for gradual tightening/relaxing: factors
    below 1 tighten, above 1 relax.  Unlimited (``None``) classes stay
    unlimited -- scaling infinity is not a decision, switch profiles
    with :class:`SetAdmission` instead.
    """

    read: float = 1.0
    write: float = 1.0
    scan: float = 1.0
    floor: int = 1
    ceiling: int = 4096

    def __post_init__(self):
        for name in ("read", "write", "scan"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} factor must be > 0")
        if not 1 <= self.floor <= self.ceiling:
            raise ValueError("need 1 <= floor <= ceiling")

    def _scaled(self, limit: Optional[int], factor: float) -> Optional[int]:
        if limit is None:
            return None
        return max(self.floor, min(self.ceiling, round(limit * factor)))

    def apply(self, ctx, rng) -> str:
        changed = 0
        for _name, admission in _admission_targets(ctx):
            cfg = admission.config
            admission.config = replace(
                cfg,
                max_reads=self._scaled(cfg.max_reads, self.read),
                max_writes=self._scaled(cfg.max_writes, self.write),
                max_scans=self._scaled(cfg.max_scans, self.scan),
            )
            changed += 1
        return (
            f"admission *= r{self.read}/w{self.write}/s{self.scan} "
            f"on {changed} nodes"
        )


@dataclass(frozen=True)
class PaceMigrations:
    """Re-budget the control plane's migration copy rate.

    "Foreground is hurting, slow the movers down" (or the reverse when
    the cluster is quiet and a backlog of moves should drain fast).
    """

    copy_mb_per_s: Optional[float] = None
    max_concurrent: Optional[int] = None

    def apply(self, ctx, rng) -> str:
        ctrl = ctx.controller
        if ctrl is None:
            return "no controller; migration pacing unchanged"
        ctrl.migration_budget = MigrationConfig(
            copy_mb_per_s=self.copy_mb_per_s,
            max_concurrent=self.max_concurrent,
        )
        return (
            f"migration budget := {self.copy_mb_per_s} MB/s, "
            f"max {self.max_concurrent} concurrent"
        )


@dataclass(frozen=True)
class TriggerRebalance:
    """Run one load-driven rebalance pass (simulated-time process).

    The rule's hysteresis decides *when* load skew warrants action; the
    controller's :meth:`~repro.cluster.control.ClusterController.
    rebalance` decides *what* to move.  An injected abort or a node
    crash mid-migration rolls back inside the controller; the rule just
    re-arms and may try again after its cooldown.
    """

    imbalance: float = 2.0

    def apply(self, ctx, rng):
        ctrl = ctx.controller
        if ctrl is None:
            return "no controller; rebalance skipped"

        def _pass():
            try:
                yield from ctrl.rebalance(imbalance=self.imbalance)
            except (TransientFault, KeyError):
                pass  # rolled back inside the controller; retry later

        return _pass()


@dataclass(frozen=True)
class SplitHottestSlice:
    """Split the hottest slice at its key-range midpoint, then migrate
    one child to the least-loaded node (simulated-time process).

    The escalation beyond :class:`TriggerRebalance`: when one slice is
    the hot spot, moving it whole just moves the problem, so divide it
    first.  ``min_bytes`` guards against splitting a slice that merely
    *looks* hot because the cluster is idle.
    """

    min_bytes: int = 0

    def apply(self, ctx, rng):
        ctrl = ctx.controller
        if ctrl is None:
            return "no controller; split skipped"
        hottest, load = None, -1
        for slice_id in sorted(ctrl._replicas):
            served = ctrl.slice_load(slice_id)
            if served > load:
                hottest, load = slice_id, served
        if hottest is None or load < self.min_bytes:
            return "no slice hot enough to split"
        entry = ctrl.table.entry(hottest)
        lo, hi = entry.key_range.lo, entry.key_range.hi
        if hi - lo < 2:
            return f"slice {hottest} key range too narrow to split"

        def _split_and_spread():
            try:
                low_id, high_id = yield from ctrl.split_slice(
                    hottest, lo + (hi - lo) // 2
                )
                src = ctrl.table.entry(high_id).replicas[0]
                dst = ctrl._placement_target(exclude_slice=high_id)
                if dst is not None and dst != src:
                    yield from ctrl.migrate_slice(high_id, src, dst)
            except (TransientFault, KeyError):
                pass  # aborted cleanly inside the controller

        return _split_and_spread()


@dataclass(frozen=True)
class CallbackAction:
    """Adapt a plain function (or generator function) into an action.

    The escape hatch for tests and bespoke policies: ``fn(ctx, rng)``
    may mutate the system synchronously, or return a generator for the
    engine to run as a process.
    """

    fn: Callable

    def apply(self, ctx, rng):
        return self.fn(ctx, rng)

"""Declarative when-condition-then-action rules with a no-flap contract.

Crystal-Controller's insight (and RackBlox's at rack scale) is that a
software-defined storage system should reconfigure itself from live
metrics through *declarative* rules, not operator intervention.  A
:class:`Rule` here is one such statement: a signal read from the
observability plane, a :class:`Hysteresis` band describing when the
condition counts as raised, a cooldown window, and an actuator action.

The flap-prevention automaton lives in :class:`RuleState`, deliberately
free of any simulator or registry dependency so the Hypothesis property
suite (``tests/policy/test_rule_properties.py``) can drive it with
arbitrary metric streams.  Its contract:

* **hysteresis** -- a fire requires the signal to cross the ``upper``
  threshold; after a fire the rule is *disarmed* until the signal falls
  back to ``lower``.  A signal oscillating strictly inside the
  ``(lower, upper)`` band therefore never fires.
* **dwell** -- with ``for_ns`` set, the signal must sit at or above
  ``upper`` *continuously* for that long before the rule fires (a
  single excursion back into the band resets the clock).
* **cooldown** -- two fires of one rule are always at least
  ``cooldown_ns`` apart, no matter what the signal does.

``direction="below"`` mirrors everything for falling-edge rules
("pressure dropped -> relax the limits again"): fire at or below
``lower``, re-arm at or above ``upper``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

#: Outcomes of one automaton observation, in increasing "interest".
IDLE = "idle"  #: condition not raised (or just re-armed)
PENDING = "pending"  #: raised, accumulating the ``for_ns`` dwell
SUPPRESSED_HYSTERESIS = "suppressed_hysteresis"  #: raised but disarmed
SUPPRESSED_COOLDOWN = "suppressed_cooldown"  #: ready but inside cooldown
SUPPRESSED_BUSY = "suppressed_busy"  #: ready but the action still runs
FIRED = "fired"  #: the rule fired; the action runs

OUTCOMES = (
    IDLE,
    PENDING,
    SUPPRESSED_HYSTERESIS,
    SUPPRESSED_COOLDOWN,
    SUPPRESSED_BUSY,
    FIRED,
)


@dataclass(frozen=True)
class Hysteresis:
    """The band that separates "raised" from "re-armed".

    For the default rising-edge ``direction="above"``: the condition is
    raised while the signal is ``>= upper`` and the rule re-arms when it
    falls to ``<= lower``.  ``for_ns`` is the dwell: how long the
    condition must stay raised, continuously, before a fire.
    """

    upper: float
    lower: float
    for_ns: int = 0
    direction: str = "above"

    def __post_init__(self):
        if self.lower > self.upper:
            raise ValueError(
                f"need lower <= upper, got ({self.lower}, {self.upper})"
            )
        if self.for_ns < 0:
            raise ValueError("for_ns must be >= 0")
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', got {self.direction!r}"
            )

    def raised(self, value: float) -> bool:
        """Is the condition raised at this signal value?"""
        if self.direction == "above":
            return value >= self.upper
        return value <= self.lower

    def rearms(self, value: float) -> bool:
        """Does this signal value re-arm a disarmed rule?"""
        if self.direction == "above":
            return value <= self.lower
        return value >= self.upper


class RuleState:
    """The per-rule no-flap automaton (pure state machine, no I/O).

    Feed it one ``(now_ns, value)`` observation per evaluation tick via
    :meth:`observe`; it returns one of the outcome constants above and
    updates :attr:`fires` / :attr:`last_fire_ns`.  ``blocked=True``
    tells the automaton the rule's action from a previous fire is still
    running: a would-be fire is then suppressed *without* consuming the
    cooldown or disarming, so the rule retries on the next tick.
    """

    def __init__(self, hysteresis: Hysteresis, cooldown_ns: int = 0):
        if cooldown_ns < 0:
            raise ValueError("cooldown_ns must be >= 0")
        self.hysteresis = hysteresis
        self.cooldown_ns = cooldown_ns
        self.armed = True
        self.raised_since: Optional[int] = None
        self.last_fire_ns: Optional[int] = None
        self.fires = 0

    def observe(self, now_ns: int, value: float, blocked: bool = False) -> str:
        band = self.hysteresis
        if band.raised(value):
            if not self.armed:
                return SUPPRESSED_HYSTERESIS
            if self.raised_since is None:
                self.raised_since = now_ns
            if now_ns - self.raised_since < band.for_ns:
                return PENDING
            if (
                self.last_fire_ns is not None
                and now_ns - self.last_fire_ns < self.cooldown_ns
            ):
                return SUPPRESSED_COOLDOWN
            if blocked:
                return SUPPRESSED_BUSY
            self.fires += 1
            self.last_fire_ns = now_ns
            self.armed = False
            self.raised_since = None
            return FIRED
        # Back below the fire line: the dwell clock resets; dropping all
        # the way through the band re-arms a disarmed rule.
        self.raised_since = None
        if band.rearms(value):
            self.armed = True
        return IDLE

    def __repr__(self):
        return (
            f"RuleState(armed={self.armed}, fires={self.fires}, "
            f"last_fire_ns={self.last_fire_ns})"
        )


@dataclass(frozen=True)
class Rule:
    """One declarative policy statement: when SIGNAL crosses BAND
    (and stays there ``for_ns``), run ACTION, then hold off
    ``cooldown_ns``.

    ``signal`` is either a signal object with a ``read(ctx) -> float``
    method (:mod:`repro.policy.signals`) or any callable taking the
    :class:`~repro.policy.engine.PolicyContext`; ``action`` is an
    action object with ``apply(ctx, rng)``
    (:mod:`repro.policy.actions`) or a callable with the same shape.
    """

    name: str
    signal: Union[Callable, object]
    hysteresis: Hysteresis
    action: Union[Callable, object]
    cooldown_ns: int = 0
    #: Free-form note carried into trace events (documentation only).
    describe: str = field(default="", compare=False)

    def __post_init__(self):
        if not self.name or any(c in self.name for c in ".,/ \t\n"):
            raise ValueError(
                "rule name must be non-empty without '.', '/', ',' or "
                f"whitespace (it keys policy.* metrics): {self.name!r}"
            )
        if self.cooldown_ns < 0:
            raise ValueError("cooldown_ns must be >= 0")
        if not (callable(self.signal) or hasattr(self.signal, "read")):
            raise ValueError(f"rule {self.name!r}: signal is not readable")
        if not (callable(self.action) or hasattr(self.action, "apply")):
            raise ValueError(f"rule {self.name!r}: action is not applicable")

    def read_signal(self, ctx) -> float:
        reader = getattr(self.signal, "read", None)
        if reader is not None:
            return float(reader(ctx))
        return float(self.signal(ctx))

    def make_state(self) -> RuleState:
        return RuleState(self.hysteresis, self.cooldown_ns)

"""Signals: what a policy rule reads each evaluation tick.

Every signal reduces the live system to one float through the
:class:`~repro.policy.engine.PolicyContext` -- registry metrics via the
non-creating :meth:`~repro.obs.metrics.MetricsRegistry.peek`, windowed
deltas via the engine's per-tick memory, and control-plane state via
the attached :class:`~repro.cluster.control.ClusterController`.  A
plain ``callable(ctx) -> float`` works anywhere a signal does; these
classes just package the recurring shapes.

Reads never create metrics and never mutate the system, so evaluating
a rule whose condition stays quiet leaves the run untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


def _as_names(names) -> Tuple[str, ...]:
    if isinstance(names, str):
        return (names,)
    return tuple(names)


_REDUCERS = {
    "sum": sum,
    "max": max,
    "min": min,
    "mean": lambda values: sum(values) / len(values),
}


@dataclass(frozen=True)
class MetricSignal:
    """The instantaneous value of one or more registry metrics.

    ``field`` selects a histogram-summary entry (``p99``, ``mean``,
    ...) when the metric is a histogram; scalar metrics ignore it.
    Missing metrics (not yet created, empty histogram) read as
    ``default``, so a rule can reference a metric before the first
    request touches it.
    """

    names: Tuple[str, ...]
    field: Optional[str] = None
    reduce: str = "sum"
    default: float = 0.0

    def __init__(self, names, field=None, reduce="sum", default=0.0):
        object.__setattr__(self, "names", _as_names(names))
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "reduce", reduce)
        object.__setattr__(self, "default", default)
        if not self.names:
            raise ValueError("MetricSignal needs at least one metric name")
        if reduce not in _REDUCERS:
            raise ValueError(f"unknown reduce {reduce!r}")

    def _one(self, ctx, name: str) -> float:
        value = ctx.metric(name)
        if value is None:
            return self.default
        if isinstance(value, dict):
            if self.field is None:
                raise ValueError(
                    f"metric {name!r} is a histogram; MetricSignal needs "
                    "a field= (e.g. 'p99')"
                )
            got = value.get(self.field)
            return self.default if got is None else float(got)
        return float(value)

    def read(self, ctx) -> float:
        return float(
            _REDUCERS[self.reduce](
                [self._one(ctx, name) for name in self.names]
            )
        )


@dataclass(frozen=True)
class DeltaRateSignal:
    """Per-second growth of scalar metrics over the last policy tick.

    Counters accumulate over a whole run, so their instantaneous value
    says little about *now*; the delta since the previous evaluation
    tick, normalised per second, is the responsive version ("deadline
    sheds per second", "lates per second").  The first tick reads 0.
    Histogram metrics are rejected -- deltas of summary dicts are
    meaningless.
    """

    names: Tuple[str, ...]
    per_second: bool = True

    def __init__(self, names, per_second=True):
        object.__setattr__(self, "names", _as_names(names))
        object.__setattr__(self, "per_second", per_second)
        if not self.names:
            raise ValueError("DeltaRateSignal needs at least one metric name")

    def read(self, ctx) -> float:
        total = 0.0
        for name in self.names:
            value = ctx.metric(name)
            if value is None:
                value = 0.0
            if isinstance(value, dict):
                raise ValueError(
                    f"DeltaRateSignal cannot window histogram {name!r}"
                )
            total += ctx.delta(("metric", name), float(value))
        if not self.per_second:
            return total
        return total / max(ctx.tick_ns, 1) * 1e9


@dataclass(frozen=True)
class DeadNodeSignal:
    """Confirmed-dead member count from the replicated control plane.

    Reads the ``cluster.membership.dead`` gauge the
    :class:`~repro.cluster.membership.ControllerGroup` publishes (the
    leader's SWIM view, counting controller replicas and watched
    storage nodes alike), so a rule can react to a node death the
    failure detector has *confirmed* -- e.g. ``TriggerRebalance`` to
    re-spread load across the survivors.  Reads ``default`` (0.0, no
    deaths) when no group is attached, so the rule idles harmlessly in
    a single-controller deployment.
    """

    name: str = "cluster.membership.dead"
    default: float = 0.0

    def read(self, ctx) -> float:
        value = ctx.metric(self.name)
        if value is None:
            return self.default
        return float(value)


@dataclass(frozen=True)
class NodeSkewSignal:
    """Hot-node / cold-node served-bytes ratio over the last tick.

    Reads the controller's per-node load counters (bytes served), takes
    the delta since the previous tick per node, and returns
    ``max / max(min, floor_bytes)`` across live, non-draining nodes.
    Reads 1.0 (no skew) without a controller or with fewer than two
    eligible nodes.  ``floor_bytes`` keeps a near-idle cluster from
    reading as pathologically skewed.
    """

    floor_bytes: int = 1

    def read(self, ctx) -> float:
        ctrl = ctx.controller
        if ctrl is None:
            return 1.0
        deltas = []
        for name in sorted(ctrl.nodes):
            if name in ctrl.draining or not ctrl.nodes[name].up:
                continue
            served = sum(
                ctrl._slice_bytes(s) for s in ctrl.nodes[name].slices
            )
            deltas.append(ctx.delta(("node_bytes", name), float(served)))
        if len(deltas) < 2:
            return 1.0
        return max(deltas) / max(min(deltas), float(self.floor_bytes))


@dataclass(frozen=True)
class SliceSkewSignal:
    """Hottest-slice / mean-slice served-bytes ratio over the last tick.

    The "one slice is on fire" detector behind split-and-migrate rules.
    Reads 1.0 without a controller or with fewer than two slices.
    """

    floor_bytes: int = 1

    def read(self, ctx) -> float:
        ctrl = ctx.controller
        if ctrl is None:
            return 1.0
        deltas = []
        for slice_id in sorted(ctrl._replicas):
            served = sum(
                ctrl._slice_bytes(s)
                for s in ctrl._replicas[slice_id].values()
            )
            deltas.append(ctx.delta(("slice_bytes", slice_id), float(served)))
        if len(deltas) < 2:
            return 1.0
        mean = sum(deltas) / len(deltas)
        return max(deltas) / max(mean, float(self.floor_bytes))

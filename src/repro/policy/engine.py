"""The policy engine: closes the obs -> control loop, deterministically.

:class:`PolicyPlan` is the declarative bundle -- rules plus an
evaluation period and a seed -- following the same attachment
discipline as every other plane: build it up front, attach it through
``SDFSystem.attach`` / ``StorageServer.attach`` /
``ClusterController.attach`` (each records the actuator targets it
reaches), and the *empty* plan wires nothing at all, so a run with an
empty plan attached is byte-identical to a run with no plan
(``tests/policy/test_scenario_no_drift.py``).

:class:`PolicyEngine` is the live evaluator: one simulation process
that wakes every ``period_ns`` of *simulated* time, reads each rule's
signal through the registry's non-creating ``peek``, feeds the
no-flap automaton (:class:`~repro.policy.rules.RuleState`), and on a
fire applies the rule's action -- synchronously, or as a spawned
process for actions that take simulated time.  Every evaluation draws
nothing from any global RNG: each rule owns a private
``numpy`` Generator stream seeded ``[plan.seed, rule_index]``, so two
runs of the same plan against the same workload replay byte-identically.

Every fire/suppress/cooldown outcome is emitted through ``repro.obs``
as ``policy.{rule}.{outcome}`` counters plus instant trace events on
the ``policy`` track, so the control loop's own behaviour is as
observable as the system it steers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.policy.rules import (
    FIRED,
    IDLE,
    PENDING,
    Rule,
    SUPPRESSED_BUSY,
    SUPPRESSED_COOLDOWN,
    SUPPRESSED_HYSTERESIS,
)
from repro.sim.units import MS


class PolicyContext:
    """What signals and actions see: clock, metrics, actuators.

    ``metric(name)`` is a non-creating registry read (``None`` when the
    metric does not exist yet); ``delta(key, value)`` returns the
    change in ``value`` since the previous evaluation tick under the
    caller's ``key`` (0.0 on first observation) -- the engine promotes
    the current tick's readings to "previous" after each evaluation
    pass, so every rule in one pass windows against the same baseline.
    """

    def __init__(self, sim, obs=None, controller=None, servers=None):
        self.sim = sim
        self.obs = obs
        self.controller = controller
        self.servers: Dict[str, object] = dict(servers or {})
        self.now: int = sim.now if sim is not None else 0
        self.tick_ns: int = 0
        self._prev: Dict[tuple, float] = {}
        self._curr: Dict[tuple, float] = {}

    def metric(self, name: str):
        if self.obs is None:
            return None
        return self.obs.metrics.peek(name, self.now)

    def delta(self, key: tuple, value: float) -> float:
        self._curr[key] = value
        return value - self._prev.get(key, value)

    def _advance(self, now: int, tick_ns: int) -> None:
        self._prev.update(self._curr)
        self._curr = {}
        self.now = now
        self.tick_ns = tick_ns


class PolicyPlan:
    """A declarative set of rules to evaluate against one run.

    Attach through the unified plane surface; the plan records which
    actuators it reached (``_controller``, ``_servers``) and the
    :class:`PolicyEngine` resolves them lazily at evaluation time, so
    attachment order (qos before or after policy) does not matter.
    """

    def __init__(
        self,
        rules: Tuple[Rule, ...] = (),
        period_ns: int = 10 * MS,
        seed: int = 0,
    ):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        if period_ns < 1:
            raise ValueError("period_ns must be >= 1")
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"rule names must be unique: {names}")
        self.period_ns = period_ns
        self.seed = seed
        self.obs = None
        self._controller = None
        self._servers: Dict[str, object] = {}
        self._systems: List[object] = []

    @property
    def empty(self) -> bool:
        """True when attaching this plan wires nothing anywhere."""
        return not self.rules

    def attach_obs(self, obs) -> None:
        """Emit rule outcomes through this observability plane."""
        self.obs = obs

    # -- attachment hooks (called by the planes' attach dispatch) ----------------------
    def _bind_controller(self, controller) -> None:
        self._controller = controller

    def _bind_server(self, name: str, server) -> None:
        self._servers[name] = server

    def _bind_system(self, system) -> None:
        self._systems.append(system)

    def __repr__(self):
        return (
            f"PolicyPlan({len(self.rules)} rules, "
            f"period={self.period_ns} ns, seed={self.seed})"
        )


class PolicyEngine:
    """The live evaluator for one :class:`PolicyPlan` on one simulator."""

    def __init__(self, plan: PolicyPlan, sim, obs=None):
        self.plan = plan
        self.sim = sim
        self.obs = obs if obs is not None else plan.obs
        self.ctx = PolicyContext(
            sim,
            obs=self.obs,
            controller=plan._controller,
            servers=plan._servers,
        )
        self._states = [rule.make_state() for rule in plan.rules]
        self._rngs = [
            np.random.default_rng([plan.seed, index])
            for index in range(len(plan.rules))
        ]
        self._busy: Dict[str, bool] = {}
        self._started = False
        #: (fire_time_ns, rule_name) per fire, in order.
        self.fire_log: List[Tuple[int, str]] = []
        self.outcome_counts: Dict[str, Dict[str, int]] = {
            rule.name: {} for rule in plan.rules
        }
        self.evaluations = 0

    # -- results -----------------------------------------------------------------------
    @property
    def total_fires(self) -> int:
        return len(self.fire_log)

    def fires(self, rule_name: str) -> int:
        return sum(1 for _at, name in self.fire_log if name == rule_name)

    # -- driving -----------------------------------------------------------------------
    def start(self, until_ns: Optional[int] = None) -> None:
        """Spawn the evaluation loop (call once, before/during sim.run).

        ``until_ns`` stops the loop at that simulated time, so a
        drain-to-empty run terminates; ``None`` ticks forever (only
        safe under ``sim.run(until=...)``).
        """
        if self._started:
            raise RuntimeError("PolicyEngine.start() called twice")
        self._started = True
        if not self.plan.rules:
            return  # an empty plan schedules nothing
        self.sim.process(self._loop(until_ns))

    def _loop(self, until_ns: Optional[int]):
        period = self.plan.period_ns
        while True:
            if until_ns is not None and self.sim.now + period > until_ns:
                return
            yield self.sim.timeout(period)
            self.evaluate()

    # -- evaluation --------------------------------------------------------------------
    def evaluate(self) -> None:
        """One pass: read every signal, run every automaton, fire."""
        now = self.sim.now
        self.ctx._advance(now, now - self.ctx.now if self.evaluations else 0)
        self.evaluations += 1
        for index, rule in enumerate(self.plan.rules):
            value = rule.read_signal(self.ctx)
            outcome = self._states[index].observe(
                now, value, blocked=self._busy.get(rule.name, False)
            )
            self._note(rule, outcome, value)
            if outcome == FIRED:
                self.fire_log.append((now, rule.name))
                self._apply(index, rule, value)

    def _apply(self, index: int, rule: Rule, value: float) -> None:
        action = rule.action
        apply = getattr(action, "apply", action)
        result = apply(self.ctx, self._rngs[index])
        if result is not None and hasattr(result, "__next__"):
            # Simulated-time action: run as a process; the rule is busy
            # (re-fires suppressed, cooldown preserved) until it ends.
            self._busy[rule.name] = True
            self.sim.process(self._drive(rule, result))
        elif self.obs is not None and self.obs.trace.enabled and result:
            self.obs.trace.instant(
                "policy", f"{rule.name}:{result}", self.sim.now
            )

    def _drive(self, rule: Rule, generator):
        try:
            yield from generator
        finally:
            self._busy[rule.name] = False
            if self.obs is not None:
                self.obs.metrics.counter(
                    f"policy.{rule.name}.actions_completed"
                ).add(1)

    def _note(self, rule: Rule, outcome: str, value: float) -> None:
        counts = self.outcome_counts[rule.name]
        counts[outcome] = counts.get(outcome, 0) + 1
        if self.obs is None:
            return
        metrics = self.obs.metrics
        metrics.counter(f"policy.{rule.name}.evals").add(1)
        if outcome in (IDLE, PENDING):
            return
        metrics.counter(f"policy.{rule.name}.{outcome}").add(1)
        if self.obs.trace.enabled:
            self.obs.trace.instant(
                "policy",
                f"{rule.name}:{outcome}",
                self.sim.now,
                value=value,
            )

    def __repr__(self):
        return (
            f"PolicyEngine({len(self.plan.rules)} rules, "
            f"{self.total_fires} fires, {self.evaluations} evals)"
        )


def build_policy_engine(plan: PolicyPlan, sim, obs=None) -> PolicyEngine:
    """One-call construction mirroring the other planes' helpers."""
    return PolicyEngine(plan, sim, obs=obs)

"""repro.policy -- deterministic, declarative self-tuning.

The autonomous policy engine closes the observe -> decide -> actuate
loop: declarative :class:`Rule` objects read live metrics through the
observability plane, pass through a property-tested hysteresis +
cooldown automaton (no flapping), and pull the control-plane levers the
rest of the repo already exposes -- admission limits, rebalance, slice
splits, migration pacing.  Everything runs on the simulated clock with
per-rule RNG streams, so a policy-driven run replays byte-identically.
"""

from repro.policy.actions import (
    CallbackAction,
    PaceMigrations,
    ScaleAdmission,
    SetAdmission,
    SplitHottestSlice,
    TriggerRebalance,
)
from repro.policy.engine import (
    PolicyContext,
    PolicyEngine,
    PolicyPlan,
    build_policy_engine,
)
from repro.policy.rules import (
    FIRED,
    IDLE,
    OUTCOMES,
    PENDING,
    SUPPRESSED_BUSY,
    SUPPRESSED_COOLDOWN,
    SUPPRESSED_HYSTERESIS,
    Hysteresis,
    Rule,
    RuleState,
)
from repro.policy.signals import (
    DeadNodeSignal,
    DeltaRateSignal,
    MetricSignal,
    NodeSkewSignal,
    SliceSkewSignal,
)

__all__ = [
    "CallbackAction",
    "DeadNodeSignal",
    "DeltaRateSignal",
    "FIRED",
    "Hysteresis",
    "IDLE",
    "MetricSignal",
    "NodeSkewSignal",
    "OUTCOMES",
    "PENDING",
    "PaceMigrations",
    "PolicyContext",
    "PolicyEngine",
    "PolicyPlan",
    "Rule",
    "RuleState",
    "SUPPRESSED_BUSY",
    "SUPPRESSED_COOLDOWN",
    "SUPPRESSED_HYSTERESIS",
    "ScaleAdmission",
    "SetAdmission",
    "SliceSkewSignal",
    "SplitHottestSlice",
    "TriggerRebalance",
    "build_policy_engine",
]

"""Usable-capacity accounting (paper S1, S2.2).

Commodity SSDs surrender raw space to (a) over-provisioning for garbage
collection (10-40% at Baidu) and (b) cross-channel parity (~10%),
leaving "typically only 50-70% of the raw capacity ... for user data".
SDF eliminates both, keeping only a ~1% reserve for bad-block
management: "99% of the flash capacity for user data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CapacityBreakdown:
    """Where a device's raw bytes go, as fractions summing to 1."""

    user_fraction: float
    op_fraction: float
    parity_fraction: float
    reserve_fraction: float

    def __post_init__(self):
        total = (
            self.user_fraction
            + self.op_fraction
            + self.parity_fraction
            + self.reserve_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions sum to {total}, not 1")
        for name in (
            "user_fraction",
            "op_fraction",
            "parity_fraction",
            "reserve_fraction",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} is negative")

    def user_bytes(self, raw_bytes: int) -> int:
        """Bytes of user-visible capacity."""
        return int(raw_bytes * self.user_fraction)


def commodity_capacity(
    op_ratio: float = 0.25,
    parity_group_size: Optional[int] = 11,
    reserve_fraction: float = 0.0,
) -> CapacityBreakdown:
    """Breakdown for a conventional SSD.

    Parity consumes 1/group_size of the channels; over-provisioning is a
    fraction of what remains.
    """
    if not 0.0 <= op_ratio < 1.0:
        raise ValueError("op_ratio outside [0, 1)")
    parity = 0.0 if parity_group_size is None else 1.0 / parity_group_size
    data_pool = 1.0 - parity - reserve_fraction
    if data_pool <= 0:
        raise ValueError("nothing left for data")
    user = data_pool * (1.0 - op_ratio)
    op = data_pool * op_ratio
    return CapacityBreakdown(
        user_fraction=user,
        op_fraction=op,
        parity_fraction=parity,
        reserve_fraction=reserve_fraction,
    )


def sdf_capacity(reserve_fraction: float = 0.01) -> CapacityBreakdown:
    """Breakdown for the SDF: no OP, no parity, ~1% BBM reserve."""
    if not 0.0 <= reserve_fraction < 1.0:
        raise ValueError("reserve_fraction outside [0, 1)")
    return CapacityBreakdown(
        user_fraction=1.0 - reserve_fraction,
        op_fraction=0.0,
        parity_fraction=0.0,
        reserve_fraction=reserve_fraction,
    )

"""Per-GB hardware cost model (paper S1, S2.2).

"By removing the over-provisioned space and other hardware costs, SDF
achieves 20% to 50% cost reduction per unit capacity, mainly as a
function of the amount of over-provisioning in systems used for
comparison ... the cost reduction is around 50% after eliminating the
need of having 40% over-provisioning space."

The model: device cost = flash cost (proportional to raw bytes) +
controller + DRAM + assembly; per-usable-GB cost divides by the usable
fraction from :mod:`repro.analysis.capacity`.  Absolute dollar figures
are illustrative (2013-era street prices); the *ratio* between
configurations is the reproduced quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.capacity import CapacityBreakdown


@dataclass(frozen=True)
class CostModel:
    """Component costs of one SSD."""

    flash_usd_per_raw_gb: float = 0.70  # 2013-era 25 nm MLC
    controller_usd: float = 60.0  # FPGA / ASIC controller
    dram_usd_per_gb: float = 8.0
    assembly_usd: float = 30.0

    def device_cost(
        self, raw_gb: float, dram_gb: float = 0.0, premium: float = 1.0
    ) -> float:
        """Total build cost; ``premium`` models vendor margin tiers."""
        if raw_gb <= 0:
            raise ValueError("raw_gb must be positive")
        if dram_gb < 0 or premium <= 0:
            raise ValueError("invalid dram_gb/premium")
        return premium * (
            raw_gb * self.flash_usd_per_raw_gb
            + self.controller_usd
            + dram_gb * self.dram_usd_per_gb
            + self.assembly_usd
        )

    def usd_per_usable_gb(
        self,
        raw_gb: float,
        breakdown: CapacityBreakdown,
        dram_gb: float = 0.0,
        premium: float = 1.0,
    ) -> float:
        """Device cost divided by usable capacity."""
        usable_gb = raw_gb * breakdown.user_fraction
        if usable_gb <= 0:
            raise ValueError("no usable capacity")
        return self.device_cost(raw_gb, dram_gb, premium) / usable_gb


DEFAULT_COST_MODEL = CostModel()


def cost_reduction_vs_commodity(
    sdf_breakdown: CapacityBreakdown,
    commodity_breakdown: CapacityBreakdown,
    raw_gb: float = 704.0,
    commodity_dram_gb: float = 1.0,
    commodity_premium: float = 1.25,
    model: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Fractional per-usable-GB saving of SDF vs a commodity device.

    The commodity premium covers the vendor-margin and
    qualification costs the in-house SDF build avoids (S2.2 notes the
    whole design took two engineers seven months).
    """
    sdf = model.usd_per_usable_gb(raw_gb, sdf_breakdown, dram_gb=0.0)
    commodity = model.usd_per_usable_gb(
        raw_gb,
        commodity_breakdown,
        dram_gb=commodity_dram_gb,
        premium=commodity_premium,
    )
    return 1.0 - sdf / commodity

"""Fleet-scale reliability expectations (paper S2.2).

"During the six months since over 2000 704GB SDFs were deployed ...
there has been only one data error that could not be corrected by BCH
ECC."  This module computes the expected number of uncorrectable events
for a fleet given the wear-dependent RBER model and the BCH strength,
and the probability of actual data loss once replication is layered on
top.
"""

from __future__ import annotations

import math

from repro.ecc.model import EccModel


def expected_fleet_uncorrectable_events(
    n_devices: int,
    months: float,
    page_reads_per_device_per_day: float,
    mean_pe_cycles: int,
    ecc: EccModel | None = None,
    page_bytes: int = 8192,
) -> float:
    """Expected uncorrectable page reads across the fleet.

    A Poisson-style expectation: reads x P(uncorrectable | wear).
    """
    if n_devices < 1 or months <= 0 or page_reads_per_device_per_day < 0:
        raise ValueError("invalid fleet parameters")
    ecc = ecc if ecc is not None else EccModel()
    p_fail = ecc.uncorrectable_probability(page_bytes, mean_pe_cycles)
    total_reads = n_devices * months * 30.0 * page_reads_per_device_per_day
    return total_reads * p_fail


def replication_loss_probability(
    p_replica_unavailable: float, replication_factor: int
) -> float:
    """P(all replicas fail for one read) with independent replicas."""
    if not 0.0 <= p_replica_unavailable <= 1.0:
        raise ValueError("probability outside [0, 1]")
    if replication_factor < 1:
        raise ValueError("need at least one replica")
    return p_replica_unavailable**replication_factor


def wear_for_target_fleet_events(
    target_events: float,
    n_devices: int,
    months: float,
    page_reads_per_device_per_day: float,
    ecc: EccModel | None = None,
    page_bytes: int = 8192,
) -> int:
    """The mean P/E wear at which the fleet would see ``target_events``.

    Inverts :func:`expected_fleet_uncorrectable_events` by bisection on
    wear; useful for asking "how worn could the paper's fleet have been
    and still see ~1 event in 6 months?".
    """
    if target_events <= 0:
        raise ValueError("target_events must be positive")
    ecc = ecc if ecc is not None else EccModel()
    lo, hi = 0, 20 * ecc.rber_model.endurance
    if (
        expected_fleet_uncorrectable_events(
            n_devices, months, page_reads_per_device_per_day, hi, ecc, page_bytes
        )
        < target_events
    ):
        return hi
    while lo < hi:
        mid = (lo + hi) // 2
        events = expected_fleet_uncorrectable_events(
            n_devices, months, page_reads_per_device_per_day, mid, ecc, page_bytes
        )
        if events < target_events:
            lo = mid + 1
        else:
            hi = mid
    return lo

"""cProfile entry point for the perf-harness scenarios.

Profile one scenario from :mod:`benchmarks.perf.run_perf` in either
scheduling mode and print the hottest functions::

    PYTHONPATH=src python -m repro.analysis.profile fig7_read_44
    PYTHONPATH=src python -m repro.analysis.profile kv_write_compaction \
        --mode generator --sort cumulative --limit 40
    PYTHONPATH=src python -m repro.analysis.profile fig7_write_44 \
        --out write44.pstats        # load later with pstats.Stats

The scenario registry lives in ``benchmarks/perf/run_perf.py``; this
module adds ``benchmarks/perf`` to ``sys.path`` itself, so it works from
a plain checkout without installing anything.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

#: Where the perf scenarios live, relative to the repository root.
_PERF_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "perf"


def _load_scenarios():
    sys.path.insert(0, str(_PERF_DIR))
    try:
        from run_perf import SCENARIOS
    finally:
        sys.path.pop(0)
    return SCENARIOS


def profile_scenario(name: str, mode: str, sort: str, limit: int,
                     out: str | None = None) -> None:
    """Run one scenario under cProfile and print/save the stats."""
    scenarios = _load_scenarios()
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise SystemExit(f"unknown benchmark {name!r}; choose from: {known}")
    scenario, modes = scenarios[name]
    if mode not in modes:
        raise SystemExit(
            f"{name!r} runs in modes {'/'.join(modes)}, not {mode!r}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    result = scenario(mode)
    profiler.disable()
    throughput = (
        f" sim={result['mb_per_s'] / 1000:.2f} GB/s"
        if "mb_per_s" in result
        else ""
    )
    print(
        f"{name} [{mode}]: wall={result['wall_s']:.2f}s "
        f"events={result['events']}{throughput}"
    )
    stats = pstats.Stats(profiler)
    if out:
        stats.dump_stats(out)
        print(f"wrote {out}")
    stats.sort_stats(sort).print_stats(limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.profile",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("benchmark", help="scenario name from the perf harness")
    parser.add_argument(
        "--mode", default="timeline",
        help="scenario mode to profile (default: timeline; the sharded "
        "scenario takes inprocess/sharded) -- validated against the "
        "scenario's registered mode pair",
    )
    parser.add_argument(
        "--sort", default="tottime",
        help="pstats sort key (tottime, cumulative, ncalls, ...)",
    )
    parser.add_argument("--limit", type=int, default=30,
                        help="rows of stats to print")
    parser.add_argument("--out", default=None,
                        help="also dump raw pstats to this path")
    args = parser.parse_args(argv)
    profile_scenario(args.benchmark, args.mode, args.sort, args.limit,
                     args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())

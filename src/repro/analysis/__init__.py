"""Analytic models backing the paper's headline claims.

* :mod:`~repro.analysis.bandwidth` -- the raw-bandwidth arithmetic of
  Table 1 and S3.2 (channels x planes x plane bandwidth);
* :mod:`~repro.analysis.capacity` -- usable-capacity accounting: the
  99% (SDF) vs 50-70% (commodity) claim;
* :mod:`~repro.analysis.cost` -- the per-GB hardware cost model behind
  the "~50% cost reduction" claim;
* :mod:`~repro.analysis.reliability` -- fleet-scale BCH/replication
  failure expectations (the one-error-in-six-months anecdote);
* :mod:`~repro.analysis.reporting` -- plain-text tables for benchmark
  output.
"""

from repro.analysis.bandwidth import (
    raw_read_bandwidth_mb_s,
    raw_write_bandwidth_mb_s,
    sdf_raw_bandwidths,
)
from repro.analysis.capacity import (
    CapacityBreakdown,
    commodity_capacity,
    sdf_capacity,
)
from repro.analysis.cost import CostModel, DEFAULT_COST_MODEL
from repro.analysis.reliability import (
    expected_fleet_uncorrectable_events,
    replication_loss_probability,
)
from repro.analysis.reporting import format_table

__all__ = [
    "raw_read_bandwidth_mb_s",
    "raw_write_bandwidth_mb_s",
    "sdf_raw_bandwidths",
    "CapacityBreakdown",
    "sdf_capacity",
    "commodity_capacity",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "expected_fleet_uncorrectable_events",
    "replication_loss_probability",
    "format_table",
]

"""Plain-text tables for benchmark output.

Every benchmark prints the rows/series its paper table or figure
reports; this keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("need at least one column")
    cells: List[List[str]] = [[_fmt(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_fmt(value) for value in row])
    widths = [
        max(len(line[col]) for line in cells) for col in range(len(headers))
    ]
    parts = []
    if title:
        parts.append(title)
    divider = "-+-".join("-" * width for width in widths)
    parts.append(
        " | ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))
    )
    parts.append(divider)
    for line in cells[1:]:
        parts.append(
            " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(parts)


def format_metrics(snapshot: dict, title: str = "metrics") -> str:
    """Render a :meth:`repro.obs.MetricsRegistry.snapshot` as a table.

    Histogram summaries (dict values) are expanded into one
    ``name.field`` row per field, so the whole snapshot stays a flat,
    diff-friendly two-column table.
    """
    rows: List[Sequence[object]] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):
            for field in sorted(value):
                rows.append([f"{name}.{field}", value[field]])
        else:
            rows.append([name, value])
    return format_table(["metric", "value"], rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)

"""Raw-bandwidth arithmetic (paper S1, Table 1, S3.2).

"The raw bandwidth of an SSD is obtained by multiplying its channel
count, number of flash planes in each channel, and each plane's
bandwidth."  Reads are limited by the channel interface when the planes
can sense faster than the bus can stream; writes are almost always
tPROG-limited.
"""

from __future__ import annotations

from typing import Tuple

from repro.nand.catalog import MICRON_25NM_MLC, SDF_CHIP_GEOMETRY
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming


def raw_read_bandwidth_mb_s(
    channels: int,
    planes_per_channel: int,
    geometry: FlashGeometry,
    timing: NandTiming,
) -> float:
    """Aggregate raw read bandwidth in decimal MB/s."""
    _check(channels, planes_per_channel)
    plane = timing.plane_read_mb_per_s(geometry.page_size)
    per_channel_bus = (
        geometry.page_size / (timing.bus_transfer_ns(geometry.page_size) / 1e9)
    ) / 1e6
    return channels * min(per_channel_bus, planes_per_channel * plane)


def raw_write_bandwidth_mb_s(
    channels: int,
    planes_per_channel: int,
    geometry: FlashGeometry,
    timing: NandTiming,
) -> float:
    """Aggregate raw write bandwidth in decimal MB/s."""
    _check(channels, planes_per_channel)
    plane = timing.plane_program_mb_per_s(geometry.page_size)
    per_channel_bus = (
        geometry.page_size / (timing.bus_transfer_ns(geometry.page_size) / 1e9)
    ) / 1e6
    return channels * min(per_channel_bus, planes_per_channel * plane)


def _check(channels: int, planes: int) -> None:
    if channels < 1 or planes < 1:
        raise ValueError("channels and planes must be >= 1")


def sdf_raw_bandwidths() -> Tuple[float, float]:
    """(read, write) raw bandwidth of the Baidu SDF in MB/s.

    S3.2 quotes 1.67 GB/s and 1.01 GB/s.
    """
    read = raw_read_bandwidth_mb_s(44, 4, SDF_CHIP_GEOMETRY, MICRON_25NM_MLC)
    write = raw_write_bandwidth_mb_s(44, 4, SDF_CHIP_GEOMETRY, MICRON_25NM_MLC)
    return read, write

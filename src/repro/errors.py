"""The common exception hierarchy for the whole package.

Every error the library raises on purpose derives from
:class:`ReproError`, split by what a caller can *do* about it:

* :class:`TransientFault` -- retry, failover or replica recovery can
  absorb it (uncorrectable reads, dropped messages, crashed nodes,
  shed requests).  Retry loops catch this one base class.
* :class:`PermanentFault` -- retrying cannot help: the data (or the
  capacity to serve it) is gone until an operator intervenes (every
  replica of a key failing, an exhausted write quorum).
* :class:`ClusterError` -- a cluster-coordination failure: routing,
  membership or migration state disagreeing with a request.  Cluster
  errors are independently transient or permanent, so concrete classes
  mix ``ClusterError`` with one of the two severities above.

This module sits at the very bottom of the dependency graph: every
layer imports it and it imports nothing from the package.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error the library raises."""


class TransientFault(ReproError):
    """A failure that retry, failover or replica recovery can absorb."""


class PermanentFault(ReproError):
    """A failure no retry can fix: data or capacity is actually gone."""


class ClusterError(ReproError):
    """A cluster-coordination failure (routing, membership, migration)."""


class ConfigError(ReproError, ValueError):
    """Invalid static configuration (modes, env vars, plan parameters).

    Subclasses :class:`ValueError` so call sites that historically
    raised ``ValueError`` for bad configuration keep their contract
    while joining the :class:`ReproError` hierarchy.  Raised *eagerly*
    at parse/validation time -- an unknown ``REPRO_SIM_MODE`` must fail
    loudly, never silently behave like ``auto``.
    """


class WrongEpochError(TransientFault, ClusterError):
    """A request carried a stale routing epoch for its slice.

    Raised by a :class:`~repro.cluster.node.StorageServer` when the
    epoch a client routed with no longer matches the slice's epoch --
    the slice moved (or is frozen mid-cutover).  Clients refresh their
    routing-table snapshot and retry; it subclasses
    :class:`TransientFault` so generic retry loops also absorb it.
    """


__all__ = [
    "ReproError",
    "TransientFault",
    "PermanentFault",
    "ClusterError",
    "ConfigError",
    "WrongEpochError",
]

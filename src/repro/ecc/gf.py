"""Arithmetic in the finite field GF(2^m) via exp/log tables."""

from __future__ import annotations

from typing import List

#: Default primitive polynomials (bitmask form, degree m) for small m.
PRIMITIVE_POLYS = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
}


class GF2m:
    """The field GF(2^m) with precomputed discrete-log tables."""

    def __init__(self, m: int, primitive_poly: int | None = None):
        if primitive_poly is None:
            if m not in PRIMITIVE_POLYS:
                raise ValueError(
                    f"no default primitive polynomial for m={m}; pass one"
                )
            primitive_poly = PRIMITIVE_POLYS[m]
        if primitive_poly >> m != 1:
            raise ValueError(
                f"primitive polynomial {primitive_poly:#b} must have degree {m}"
            )
        self.m = m
        self.order = 1 << m  # field size q = 2^m
        self.n = self.order - 1  # multiplicative group order
        self.poly = primitive_poly
        self._exp: List[int] = [0] * (2 * self.n)
        self._log: List[int] = [0] * self.order
        value = 1
        for power in range(self.n):
            if power > 0 and value == 1:
                # alpha's order divides `power` < n: poly is not primitive.
                raise ValueError(
                    f"{primitive_poly:#b} is not primitive for m={m}"
                )
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.order:
                value ^= primitive_poly
        if value != 1:
            raise ValueError(f"{primitive_poly:#b} is not primitive for m={m}")
        # Duplicate the table so exp() never needs an explicit mod.
        for power in range(self.n, 2 * self.n):
            self._exp[power] = self._exp[power - self.n]

    # -- element-level operations ---------------------------------------------
    def exp(self, power: int) -> int:
        """alpha ** power (power may be any integer)."""
        return self._exp[power % self.n]

    def log(self, element: int) -> int:
        """Discrete log base alpha; undefined (raises) for zero."""
        if element == 0:
            raise ValueError("log(0) is undefined")
        if not 0 < element < self.order:
            raise ValueError(f"{element} is not a field element")
        return self._log[element]

    def add(self, a: int, b: int) -> int:
        """Addition == subtraction == XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[(self._log[a] - self._log[b]) % self.n]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self._exp[self.n - self._log[a]]

    def pow(self, a: int, exponent: int) -> int:
        """Field exponentiation."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 ** negative")
            return 0
        return self._exp[(self._log[a] * exponent) % self.n]

    # -- polynomial helpers (coefficient lists, index = power of x) -------------
    def poly_eval(self, coeffs: List[int], x: int) -> int:
        """Evaluate a polynomial (Horner) at ``x``."""
        result = 0
        for coeff in reversed(coeffs):
            result = self.add(self.mul(result, x), coeff)
        return result

    def poly_mul(self, a: List[int], b: List[int]) -> List[int]:
        """Product of two coefficient-list polynomials."""
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= self.mul(ca, cb)
        return out

    def __repr__(self):
        return f"GF2m(m={self.m}, poly={self.poly:#b})"

"""Probabilistic ECC model used inside timed simulations.

Running the real BCH codec on every simulated 8 KB page read would
dominate run time without changing any result, so devices use this
calibrated stand-in: given the page's wear (P/E cycles) it samples
whether the read is clean, corrected, or uncorrectable, using the same
binomial mathematics as :func:`repro.nand.errors.page_failure_probability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.ecc.bch import BCHCode
from repro.nand.errors import RawBitErrorModel, page_failure_probability


@lru_cache(maxsize=None)
def bch_code(m: int, t: int) -> BCHCode:
    """Shared :class:`BCHCode` per ``(m, t)``.

    Building a code means constructing GF(2^m) tables and the generator
    polynomial (lcm of up to 2t minimal polynomials) -- costly enough
    that rebuilding it per decode dominates functional ECC paths.  The
    codec is stateless apart from an internal scratch buffer, so one
    instance per parameter pair serves every caller of the
    single-threaded simulator.
    """
    return BCHCode(m, t)


class ReadStatus(Enum):
    """Outcome of one ECC-protected page read."""
    CLEAN = "clean"  # no raw bit errors
    CORRECTED = "corrected"  # errors present, BCH fixed them
    UNCORRECTABLE = "uncorrectable"  # BCH failed; software must recover


@dataclass
class EccModel:
    """Per-chip BCH protection, parameterized like the SDF's codec.

    ``t`` errors correctable per ``codeword_bytes`` sector.  With
    ``rng=None`` the model is deterministic-optimistic: reads are always
    CLEAN (used by pure performance experiments).
    """

    t: int = 40
    codeword_bytes: int = 512
    rber_model: RawBitErrorModel = RawBitErrorModel()
    rng: Optional[np.random.Generator] = None

    def __post_init__(self):
        if self.t < 1:
            raise ValueError(f"t must be >= 1, got {self.t}")
        if self.codeword_bytes < 1:
            raise ValueError("codeword_bytes must be positive")
        self.corrected_reads = 0
        self.uncorrectable_reads = 0
        self.clean_reads = 0
        #: Optional :class:`repro.obs.Observability`; set by
        #: ``repro.obs.attach_ecc``, which exposes the three outcome
        #: tallies above as pull metrics (``ecc.reads_*``).
        self.obs = None

    def uncorrectable_probability(
        self, page_bytes: int, pe_cycles: int
    ) -> float:
        """P(page uncorrectable) at the given wear level."""
        rber = self.rber_model.rber(pe_cycles)
        return page_failure_probability(
            page_bytes, rber, self.t, self.codeword_bytes
        )

    def read_outcome(self, page_bytes: int, pe_cycles: int) -> ReadStatus:
        """Sample the outcome of one page read."""
        if self.rng is None:
            self.clean_reads += 1
            return ReadStatus.CLEAN
        rber = self.rber_model.rber(pe_cycles)
        n_bits = page_bytes * 8
        # Expected raw errors tiny -> use a Poisson draw for the count.
        n_errors = int(self.rng.poisson(rber * n_bits))
        if n_errors == 0:
            self.clean_reads += 1
            return ReadStatus.CLEAN
        p_fail = self.uncorrectable_probability(page_bytes, pe_cycles)
        # Condition on at least one error having occurred.
        p_any = 1.0 - (1.0 - rber) ** n_bits
        conditional_fail = min(1.0, p_fail / p_any) if p_any > 0 else 0.0
        if self.rng.random() < conditional_fail:
            self.uncorrectable_reads += 1
            return ReadStatus.UNCORRECTABLE
        self.corrected_reads += 1
        return ReadStatus.CORRECTED

"""BCH error-correcting codes.

SDF removes cross-channel parity and relies on per-chip BCH (25% of each
Spartan-6's logic is the BCH codec) plus system-level replication.  This
package provides:

* :class:`~repro.ecc.gf.GF2m` -- arithmetic in GF(2^m);
* :class:`~repro.ecc.bch.BCHCode` -- a working binary BCH codec
  (systematic encode; syndrome / Berlekamp-Massey / Chien-search decode);
* :class:`~repro.ecc.model.EccModel` -- the calibrated probabilistic
  stand-in used inside large timed simulations, where running the real
  codec on every 8 KB page would be pointlessly slow.
"""

from repro.ecc.bch import BCHCode, UncorrectableError
from repro.ecc.gf import GF2m
from repro.ecc.model import EccModel, ReadStatus, bch_code

__all__ = [
    "GF2m",
    "BCHCode",
    "UncorrectableError",
    "EccModel",
    "ReadStatus",
    "bch_code",
]

"""A working binary BCH codec.

Systematic encoding and full algebraic decoding: syndrome computation,
Berlekamp-Massey for the error-locator polynomial, Chien search for the
error positions.  Codewords are lists of bits where index ``i`` is the
coefficient of ``x^i``.

This is the same construction NAND controllers (including the SDF's
Spartan-6 BCH block) implement in hardware; Python makes it slow but the
algebra is identical.  Timed simulations use
:class:`repro.ecc.model.EccModel` instead and fall back to this codec
only in functional tests.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ecc.gf import GF2m


class UncorrectableError(Exception):
    """More errors than the code can correct (decoder detected failure)."""


def _cyclotomic_coset(i: int, n: int) -> List[int]:
    """The 2-cyclotomic coset of i modulo n: {i, 2i, 4i, ...}."""
    coset = []
    current = i % n
    while current not in coset:
        coset.append(current)
        current = (current * 2) % n
    return coset


class BCHCode:
    """Binary BCH code of length ``n = 2^m - 1`` correcting ``t`` errors."""

    def __init__(self, m: int, t: int, field: GF2m | None = None):
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        self.field = field if field is not None else GF2m(m)
        if self.field.m != m:
            raise ValueError("field degree does not match m")
        self.m = m
        self.t = t
        self.n = self.field.n
        self.generator = self._build_generator()
        self.k = self.n - (len(self.generator) - 1)
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) has no data capacity (k={self.k})"
            )
        #: Scratch buffer reused across :meth:`syndromes` calls.
        self._synd_buf: List[int] = [0] * (2 * t)

    def _build_generator(self) -> List[int]:
        """g(x) = lcm of minimal polynomials of alpha^1 .. alpha^{2t}."""
        gf = self.field
        covered: set = set()
        generator = [1]
        for i in range(1, 2 * self.t + 1):
            if i % self.n in covered:
                continue
            coset = _cyclotomic_coset(i, self.n)
            covered.update(coset)
            # Minimal polynomial: product over the coset of (x - alpha^j).
            minimal = [1]
            for j in coset:
                minimal = gf.poly_mul(minimal, [gf.exp(j), 1])
            # Coefficients of a minimal polynomial lie in GF(2).
            if any(coeff not in (0, 1) for coeff in minimal):
                raise AssertionError(
                    "minimal polynomial has non-binary coefficients "
                    "(primitive polynomial is wrong)"
                )
            generator = gf.poly_mul(generator, minimal)
        return generator

    # -- encoding ------------------------------------------------------------------
    @property
    def parity_bits(self) -> int:
        """Number of parity bits (n - k)."""
        return self.n - self.k

    def encode(self, message: Sequence[int]) -> List[int]:
        """Systematic encode: ``k`` message bits -> ``n``-bit codeword.

        Codeword layout: positions ``0 .. n-k-1`` are parity, positions
        ``n-k .. n-1`` carry the message (coefficient order).
        """
        if len(message) != self.k:
            raise ValueError(f"message must be {self.k} bits, got {len(message)}")
        if any(bit not in (0, 1) for bit in message):
            raise ValueError("message bits must be 0 or 1")
        shift = self.parity_bits
        # remainder of m(x) * x^(n-k) divided by g(x), all over GF(2).
        dividend = [0] * shift + list(message)
        remainder = self._gf2_mod(dividend, self.generator)
        codeword = remainder + [0] * (self.n - shift)
        for idx, bit in enumerate(message):
            codeword[shift + idx] = bit
        return codeword

    @staticmethod
    def _gf2_mod(dividend: List[int], divisor: List[int]) -> List[int]:
        """Remainder of polynomial division over GF(2), len = deg(divisor)."""
        out = list(dividend)
        deg_div = len(divisor) - 1
        for idx in range(len(out) - 1, deg_div - 1, -1):
            if out[idx]:
                for j, coeff in enumerate(divisor):
                    if coeff:
                        out[idx - deg_div + j] ^= 1
        return out[:deg_div]

    def extract_message(self, codeword: Sequence[int]) -> List[int]:
        """Recover the message bits from a (corrected) codeword."""
        if len(codeword) != self.n:
            raise ValueError(f"codeword must be {self.n} bits")
        return list(codeword[self.parity_bits :])

    # -- decoding ------------------------------------------------------------------
    def syndromes(self, received: Sequence[int], out: List[int] | None = None) -> List[int]:
        """S_j = r(alpha^j) for j = 1 .. 2t.

        Returns a per-code scratch buffer (overwritten by the next call)
        unless ``out`` supplies a 2t-entry destination; copy the result
        to keep it across calls.
        """
        gf = self.field
        exp = gf.exp
        result = self._synd_buf if out is None else out
        for j in range(1, 2 * self.t + 1):
            value = 0
            for position, bit in enumerate(received):
                if bit:
                    value ^= exp(j * position)
            result[j - 1] = value
        return result

    def _berlekamp_massey(self, synd: List[int]) -> List[int]:
        """Error-locator polynomial sigma(x) from the syndromes."""
        gf = self.field
        sigma = [1]
        prev = [1]
        length = 0
        gap = 1
        prev_discrepancy = 1
        for step in range(2 * self.t):
            discrepancy = synd[step]
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i] and synd[step - i]:
                    discrepancy ^= gf.mul(sigma[i], synd[step - i])
            if discrepancy == 0:
                gap += 1
                continue
            coeff = gf.div(discrepancy, prev_discrepancy)
            candidate = list(sigma)
            shifted = [0] * gap + [gf.mul(coeff, c) for c in prev]
            if len(shifted) > len(candidate):
                candidate += [0] * (len(shifted) - len(candidate))
            for i, value in enumerate(shifted):
                candidate[i] ^= value
            if 2 * length <= step:
                prev = list(sigma)
                prev_discrepancy = discrepancy
                length = step + 1 - length
                gap = 1
            else:
                gap += 1
            sigma = candidate
        # Trim trailing zeros.
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: List[int]) -> List[int]:
        """Positions i where sigma(alpha^{-i}) == 0."""
        gf = self.field
        positions = []
        for i in range(self.n):
            if gf.poly_eval(sigma, gf.exp(-i)) == 0:
                positions.append(i)
        return positions

    def decode(self, received: Sequence[int]) -> List[int]:
        """Correct up to ``t`` bit errors; return the corrected codeword.

        Raises :class:`UncorrectableError` when the decoder detects more
        errors than it can fix.
        """
        if len(received) != self.n:
            raise ValueError(f"received word must be {self.n} bits")
        synd = self.syndromes(received)
        if not any(synd):
            return list(received)
        sigma = self._berlekamp_massey(synd)
        n_errors = len(sigma) - 1
        if n_errors > self.t:
            raise UncorrectableError(
                f"locator degree {n_errors} exceeds t={self.t}"
            )
        positions = self._chien_search(sigma)
        if len(positions) != n_errors:
            raise UncorrectableError(
                f"locator degree {n_errors} but {len(positions)} roots found"
            )
        corrected = list(received)
        for position in positions:
            corrected[position] ^= 1
        # Consistency check: the corrected word must be a codeword.
        if any(self.syndromes(corrected)):
            raise UncorrectableError("correction did not yield a codeword")
        return corrected

    def __repr__(self):
        return f"BCHCode(n={self.n}, k={self.k}, t={self.t})"

"""repro -- reproduction of *SDF: Software-Defined Flash* (ASPLOS 2014).

The package implements, in pure Python:

* a discrete-event simulation kernel (:mod:`repro.sim`);
* a NAND flash substrate with datasheet timing (:mod:`repro.nand`,
  :mod:`repro.channel`), BCH ECC (:mod:`repro.ecc`) and FTLs
  (:mod:`repro.ftl`);
* the SDF device and its conventional-SSD baselines
  (:mod:`repro.devices`);
* the paper's host-software contribution -- the user-space block layer
  and schedulers (:mod:`repro.core`);
* the CCDB LSM-tree KV store and cluster/workload models the evaluation
  runs on (:mod:`repro.kv`, :mod:`repro.cluster`, :mod:`repro.workloads`);
* analytic models for capacity, cost and reliability
  (:mod:`repro.analysis`);
* observability (:mod:`repro.obs`) and deterministic fault injection
  (:mod:`repro.faults`), both attachable to an already-built system
  behind no-op defaults.

Quickstart::

    from repro import build_sdf_system

    system = build_sdf_system()
    block = system.block_layer.allocate()
    system.block_layer.write(block, b"hello" * 100)
    assert system.block_layer.read(block, 0, 500) == b"hello" * 100
"""

from repro._version import __version__
from repro.core.api import (
    SDFSystem,
    build_conventional_ssd,
    build_sdf_system,
)
from repro.errors import (
    ClusterError,
    PermanentFault,
    ReproError,
    TransientFault,
    WrongEpochError,
)

__all__ = [
    "__version__",
    "SDFSystem",
    "build_sdf_system",
    "build_conventional_ssd",
    "ReproError",
    "TransientFault",
    "PermanentFault",
    "ClusterError",
    "WrongEpochError",
]

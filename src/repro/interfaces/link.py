"""Host link (PCIe / SATA) bandwidth models.

The paper treats the host links as throughput caps and reports the
*measured effective* limits it observed: PCIe 1.1 x8 moves 1.61 GB/s of
read data and 1.40 GB/s of write data; SATA 2.0 is a 300 MB/s line (S3.2,
Table 1).  We model each direction as a capacity-1 resource whose
transfers are chunked so concurrent DMAs interleave fairly, the way PCIe
TLPs / SATA frames do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.errors import TransientFault
from repro.faults.injector import DELAY, DROP, NULL_INJECTOR
from repro.sim import Resource, Simulator
from repro.sim.stats import ThroughputMeter
from repro.sim.timeline import ResourceTimeline
from repro.sim.units import KIB, transfer_ns


class LinkDropError(TransientFault):
    """A host-link transfer was lost (aborted DMA, link reset)."""


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a host link."""

    name: str
    read_mb_per_s: float
    write_mb_per_s: float
    full_duplex: bool = True
    chunk_bytes: int = 128 * KIB
    per_transfer_overhead_ns: int = 1_000

    def __post_init__(self):
        if self.read_mb_per_s <= 0 or self.write_mb_per_s <= 0:
            raise ValueError("link bandwidths must be positive")
        if self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if self.per_transfer_overhead_ns < 0:
            raise ValueError("per_transfer_overhead_ns must be >= 0")


#: Paper S3.2: "maximum PCIe throughputs when used for data read and
#: write are 1.61 GB/s and 1.40 GB/s".  Per-transfer overhead is tiny:
#: scatter-gather descriptors amortize DMA setup across a whole request.
PCIE_1_1_X8 = LinkSpec("PCIe 1.1 x8", 1610.0, 1400.0,
                       per_transfer_overhead_ns=100)

#: SATA 2.0: 300 MB/s line rate, ~90% effective after 8b/10b + FIS
#: overheads; half duplex.
SATA_2_0 = LinkSpec("SATA 2.0", 270.0, 270.0, full_duplex=False)


class HostLink:
    """A timed host link shared by every requester on the device."""

    def __init__(self, sim: Simulator, spec: LinkSpec):
        self.sim = sim
        self.spec = spec
        self._read_lane = Resource(sim, capacity=1)
        self._write_lane = (
            Resource(sim, capacity=1) if spec.full_duplex else self._read_lane
        )
        #: Timeline mirrors of the lanes, used by device fast paths.
        #: A device must use either the resources or the timelines for a
        #: whole run, never both (they would double-book the lane).
        self._tl_read = ResourceTimeline()
        self._tl_write = (
            ResourceTimeline() if spec.full_duplex else self._tl_read
        )
        self.read_meter = ThroughputMeter(f"{spec.name}.read")
        self.write_meter = ThroughputMeter(f"{spec.name}.write")
        #: Memoized single-chunk transfer cost per (direction, nbytes).
        self._cost_cache: dict = {}
        #: Fault-injection handle (``drop``/``delay``);
        #: :data:`~repro.faults.injector.NULL_INJECTOR` unless wired.
        self.faults = NULL_INJECTOR

    def _lane_and_rate(self, direction: str):
        if direction == "read":
            return self._read_lane, self.spec.read_mb_per_s, self.read_meter
        if direction == "write":
            return self._write_lane, self.spec.write_mb_per_s, self.write_meter
        raise ValueError(f"direction must be 'read' or 'write', not {direction!r}")

    def transfer(self, direction: str, nbytes: int):
        """Generator: move ``nbytes`` in ``direction`` over the link.

        'read' is device-to-host, 'write' is host-to-device.  Transfers
        are split into chunks so concurrent requests share the lane.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if self.faults.fires(DROP, direction=direction, nbytes=nbytes) is not None:
            raise LinkDropError(
                f"{self.spec.name}: {direction} transfer of {nbytes} B dropped"
            )
        extra_ns = self.faults.delay_ns(DELAY, direction=direction, nbytes=nbytes)
        if extra_ns > 0:
            yield self.sim.timeout(extra_ns)
        lane, rate, meter = self._lane_and_rate(direction)
        remaining = nbytes
        first = True
        while remaining > 0 or first:
            chunk = min(remaining, self.spec.chunk_bytes)
            with lane.request() as hold:
                yield hold
                cost = transfer_ns(chunk, rate)
                if first:
                    cost += self.spec.per_transfer_overhead_ns
                yield self.sim.hold(cost)
            remaining -= chunk
            first = False
        meter.record(self.sim.now, nbytes)

    def fast_ok(self, nbytes: int) -> bool:
        """True when :meth:`reserve` is exact for an ``nbytes`` transfer.

        The timeline reservation models one uninterrupted lane hold, so
        it is only equivalent to :meth:`transfer` for single-chunk
        transfers (one 8 KB page easily fits the 128 KB chunk) with no
        *active* link fault rules (drops/delays need the generator
        path).  A wired-but-quiet injector -- the common case when a
        fault plan targets other sites, e.g. node crashes -- keeps the
        fast path: with no rule at (link, drop/delay) the generator
        path makes no RNG draw, so eliding the checks is drift-free.
        Re-checked per transfer because rules may be added mid-run.
        """
        if nbytes > self.spec.chunk_bytes:
            return False
        faults = self.faults
        return faults is NULL_INJECTOR or faults.quiet(DROP, DELAY)

    def prefill_costs(self, direction: str, sizes) -> None:
        """Batch-warm the memoized single-chunk cost table.

        Observationally neutral (pure cache fill with the values
        :meth:`reserve_call` would compute lazily); vectorized with
        numpy when several sizes are missing.
        """
        missing = [
            int(n) for n in set(sizes) if (direction, int(n)) not in self._cost_cache
        ]
        if not missing:
            return
        if direction == "read":
            rate = self.spec.read_mb_per_s
        elif direction == "write":
            rate = self.spec.write_mb_per_s
        else:
            raise ValueError(
                f"direction must be 'read' or 'write', not {direction!r}"
            )
        from repro.channel import vector

        overhead = self.spec.per_transfer_overhead_ns
        for nbytes, cost in vector.transfer_costs(missing, rate):
            self._cost_cache[(direction, nbytes)] = cost + overhead

    def reserve_call(self, direction: str, nbytes: int, fn):
        """Timeline-reserve a single-chunk transfer at sim-now; ``fn``
        runs at the DMA's end instant.

        Returns ``(grant_ns, end_ns)``.  The caller is responsible for
        recording the direction's throughput meter inside ``fn``
        (mirroring :meth:`transfer`, which records at completion) and
        must only use this while :meth:`fast_ok` holds.
        """
        key = (direction, nbytes)
        cached = self._cost_cache.get(key)
        if cached is None:
            if direction == "read":
                rate = self.spec.read_mb_per_s
            elif direction == "write":
                rate = self.spec.write_mb_per_s
            else:
                raise ValueError(
                    f"direction must be 'read' or 'write', not {direction!r}"
                )
            cost = (
                transfer_ns(nbytes, rate) + self.spec.per_transfer_overhead_ns
            )
            cached = self._cost_cache[key] = cost
        timeline = self._tl_read if direction == "read" else self._tl_write
        return timeline.reserve_and_call(self.sim, cached, fn)

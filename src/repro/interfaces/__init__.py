"""Host-side interface models: links, I/O stacks, interrupts.

* :class:`~repro.interfaces.link.HostLink` -- PCIe 1.1 x8 / SATA 2.0
  bandwidth models with chunked transfers so concurrent DMAs share the
  link fairly.
* :class:`~repro.interfaces.iostack.IOStackModel` -- per-request software
  cost: the kernel block stack (~12.9 us, S4.3) vs SDF's user-space
  IOCTL path (2-4 us, S2.4).
* :class:`~repro.interfaces.interrupts.InterruptCoalescer` -- SDF's MSI
  merging (S2.1): interrupts are merged per Spartan-6 and again in the
  Virtex-5, cutting the interrupt rate to 1/5-1/4 of IOPS.
"""

from repro.interfaces.interrupts import InterruptCoalescer
from repro.interfaces.iostack import (
    IOStackModel,
    KERNEL_IO_STACK,
    SDF_USER_SPACE_STACK,
)
from repro.interfaces.link import (
    HostLink,
    PCIE_1_1_X8,
    SATA_2_0,
    LinkSpec,
)

__all__ = [
    "HostLink",
    "LinkSpec",
    "PCIE_1_1_X8",
    "SATA_2_0",
    "IOStackModel",
    "KERNEL_IO_STACK",
    "SDF_USER_SPACE_STACK",
    "InterruptCoalescer",
]

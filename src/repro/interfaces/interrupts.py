"""Interrupt coalescing (paper S2.1).

SDF merges completion interrupts twice -- per Spartan-6 (11 channels)
and again in the Virtex-5 -- so the host sees only 1/5 to 1/4 as many
interrupts as completions.  We model the *CPU cost* effect: each
completion contributes an amortized share of an interrupt's handling
cost, and the coalescer reports the achieved merge ratio.
"""

from __future__ import annotations

from repro.sim import Simulator
from repro.sim.stats import Counter


class InterruptCoalescer:
    """Merges completion events into periodic interrupts.

    ``window_ns`` is the hardware coalescing window: completions landing
    within the same window share one interrupt.  ``handler_ns`` is the
    host-side cost of servicing one interrupt.
    """

    def __init__(
        self,
        sim: Simulator,
        window_ns: int = 20_000,
        handler_ns: int = 4_000,
    ):
        if window_ns < 0 or handler_ns < 0:
            raise ValueError("window and handler costs must be >= 0")
        self.sim = sim
        self.window_ns = window_ns
        self.handler_ns = handler_ns
        self.completions = Counter("completions")
        self.interrupts = Counter("interrupts")
        self._window_end = -1

    def on_completion(self) -> int:
        """Record a completion; returns the latency contribution (ns).

        The first completion of a window raises a (virtual) interrupt
        and pays the full handler cost once the window closes; followers
        ride the same interrupt for free but wait for the window edge.
        """
        self.completions.add()
        now = self.sim.now
        if now > self._window_end:
            self.interrupts.add()
            self._window_end = now + self.window_ns
            return self.handler_ns
        # Merged: completion is signalled at the window edge.
        return (self._window_end - now) // 8 + self.handler_ns // 4

    @property
    def merge_ratio(self) -> float:
        """interrupts / completions; the paper reports 1/5 to 1/4."""
        if self.completions.value == 0:
            return 1.0
        return self.interrupts.value / self.completions.value

"""I/O software-stack cost models.

Paper S4.3 (after Foong et al.): the Linux block stack spends ~9100 CPU
cycles issuing a request and ~21900 completing it -- ~12.9 us total on a
2.4 GHz server core.  SDF's user-space IOCTL path plus thin PCIe driver
costs only 2-4 us per request (S2.4), mostly MSI handling.

Each model optionally owns a host-CPU resource so that per-request
software time is *serialized* per issuing context, which is what makes
software overhead matter at high IOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Resource, Simulator


@dataclass(frozen=True)
class IOStackModel:
    """Per-request software cost, split into submit and complete halves."""

    name: str
    submit_ns: int
    complete_ns: int

    def __post_init__(self):
        if self.submit_ns < 0 or self.complete_ns < 0:
            raise ValueError("stack costs must be >= 0")

    @property
    def total_ns(self) -> int:
        """Submit + complete cost per request."""
        return self.submit_ns + self.complete_ns


#: Linux VFS + block + SCSI/SATA stack: 3.8 us submit + 9.1 us complete.
KERNEL_IO_STACK = IOStackModel("linux-kernel", 3_800, 9_100)

#: SDF: IOCTL straight to the PCIe driver; ~3 us total, mostly the MSI.
SDF_USER_SPACE_STACK = IOStackModel("sdf-user-space", 1_000, 2_000)


class HostCPU:
    """A pool of cores serializing software-stack work."""

    def __init__(self, sim: Simulator, cores: int = 8):
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.cores = Resource(sim, capacity=cores)

    def spend(self, cost_ns: int):
        """Generator: occupy one core for ``cost_ns``."""
        if cost_ns <= 0:
            return
        with self.cores.request() as hold:
            yield hold
            yield self.sim.timeout(cost_ns)

"""The user-space block layer (paper S2.4).

Sits between the storage software (CCDB slices) and the SDF's exposed
channels.  Responsibilities, exactly as the paper lists them:

* dictate the fixed 8 MB write size and hand out unique block IDs;
* hash each ID to a channel (round-robin over consecutive IDs);
* manage physical space: track which logical blocks are erased and
  ready, which channels to write, and erase freed blocks -- in the
  background by default, so erase latency stays off the write path;
* translate byte-level reads into 8 KB page reads on the right channel.

All I/O methods are generators to be run as simulation processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.scheduler import ErasePolicy, PlacementPolicy, RoundRobinPlacement
from repro.devices.sdf import SDFDevice
from repro.sim import AllOf, Store


@dataclass(frozen=True)
class BlockLocation:
    """Where a block ID's data lives."""

    channel: int
    logical_block: int


class BlockNotFoundError(KeyError):
    """Read/free of a block ID that has never been written."""


class UserSpaceBlockLayer:
    """ID-addressed 8 MB block storage over an :class:`SDFDevice`."""

    def __init__(
        self,
        device: SDFDevice,
        placement: Optional[PlacementPolicy] = None,
        erase_policy: ErasePolicy = ErasePolicy.BACKGROUND,
    ):
        self.device = device
        self.sim = device.sim
        self.placement = placement if placement is not None else RoundRobinPlacement()
        self.erase_policy = erase_policy
        self.block_bytes = device.ftls[0].logical_block_bytes
        self.page_size = device.array.geometry.page_size
        self.pages_per_block = device.ftls[0].pages_per_logical_block

        #: Optional :class:`repro.obs.Observability`; wired up (together
        #: with the cached metric handles below) by
        #: ``repro.obs.attach_block_layer``.  None keeps every hook a
        #: single attribute check.
        self.obs = None
        self._m_writes = self._m_reads = None
        self._m_frees = self._m_rewrites = None
        self._m_backlog: List = []
        #: Optional :class:`repro.qos.limits.BlockWriteLimiter` bounding
        #: concurrent block writes per channel; set by
        #: ``repro.qos.attach_block_layer_qos``.  None leaves writes
        #: unbounded.
        self.qos = None

        self._next_id = 0
        self._locations: Dict[int, BlockLocation] = {}
        #: Per channel: erased logical blocks ready for writing.
        self._ready: List[Store] = []
        #: Per channel: freed-but-not-yet-erased blocks (inline policy
        #: pulls from here; background policy drains it via a process).
        self._dirty: List[Store] = []
        #: Outstanding writes per channel, for load-aware placement.
        self.loads: List[int] = [0] * device.n_channels
        self.background_erases = 0

        for channel in range(device.n_channels):
            ready = Store(self.sim)
            for logical_block in range(device.ftls[channel].n_logical_blocks):
                ready.put(logical_block)
            self._ready.append(ready)
            self._dirty.append(Store(self.sim))
            if erase_policy is ErasePolicy.BACKGROUND:
                self.sim.process(self._background_eraser(channel))

    # -- ID management -----------------------------------------------------------
    def allocate_id(self) -> int:
        """A fresh unique block ID (the low-64-bit counter of S2.4)."""
        block_id = self._next_id
        self._next_id += 1
        return block_id

    def location_of(self, block_id: int) -> Optional[BlockLocation]:
        """Where a block ID's data lives (None if unknown)."""
        return self._locations.get(block_id)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._locations

    @property
    def stored_blocks(self) -> int:
        """Number of block IDs currently stored."""
        return len(self._locations)

    def _check_range(self, offset: int, nbytes: Optional[int]) -> int:
        """Validate a byte range against the block, returning ``nbytes``.

        Shared by the timed and functional read paths so both reject
        out-of-range requests instead of silently truncating.
        """
        if nbytes is None:
            nbytes = self.block_bytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > self.block_bytes:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside the block"
            )
        return nbytes

    # -- data conversion ----------------------------------------------------------
    def _paginate(self, data: Union[bytes, Sequence, None]) -> List:
        """Turn a write payload into exactly ``pages_per_block`` pages."""
        if data is None:
            return [None] * self.pages_per_block
        if isinstance(data, (bytes, bytearray, memoryview)):
            raw = bytes(data)
            if len(raw) > self.block_bytes:
                raise ValueError(
                    f"payload of {len(raw)} bytes exceeds the "
                    f"{self.block_bytes}-byte block"
                )
            pages = [
                raw[offset : offset + self.page_size]
                for offset in range(0, len(raw), self.page_size)
            ]
            pages += [b""] * (self.pages_per_block - len(pages))
            return pages
        pages = list(data)
        if len(pages) != self.pages_per_block:
            raise ValueError(
                f"page list must have {self.pages_per_block} entries, "
                f"got {len(pages)}"
            )
        return pages

    # -- I/O (generators) --------------------------------------------------------------
    def write(self, block_id: int, data: Union[bytes, Sequence, None] = None):
        """Store an 8 MB block under ``block_id``.

        ``data`` may be ``bytes`` (padded to the block), a full page
        list, or ``None`` for a sized placeholder.  Rewriting an existing
        ID frees its old block first.
        """
        obs = self.obs
        start = self.sim.now
        rewrite = block_id in self._locations
        if rewrite:
            yield from self.free(block_id)
        channel_index = self.placement.choose(block_id, self.loads)
        channel = self.device.channels[channel_index]
        self.loads[channel_index] += 1
        write_slot = None
        try:
            if self.qos is not None:
                # Wait for a per-channel write slot while the load count
                # already reflects us, so placement steers later writes
                # around the backlog we are queued behind.
                write_slot = yield from self.qos.acquire(channel_index)
            logical_block = yield from self._acquire_block(channel_index)
            yield from channel.write(logical_block, self._paginate(data))
            self._locations[block_id] = BlockLocation(
                channel_index, logical_block
            )
        finally:
            if write_slot is not None:
                self.qos.release(channel_index, write_slot)
            self.loads[channel_index] -= 1
        if obs is not None:
            self._m_writes.add()
            if rewrite:
                self._m_rewrites.add()
            if obs.trace.enabled:
                obs.trace.span(
                    "blk/write",
                    "write",
                    start,
                    self.sim.now,
                    block_id=block_id,
                    channel=channel_index,
                    rewrite=rewrite,
                )

    def write_batch(self, items: Sequence):
        """Store several blocks concurrently; finish when all land.

        ``items`` is a sequence of ``(block_id, data)`` pairs.  Each
        write follows the exact single-write path (placement, QoS slot,
        erase-on-rewrite), but they overlap in time the way independent
        writers would -- this is the flush/compaction batching hook.
        Returns the number of blocks written.
        """
        items = list(items)
        if not items:
            return 0
        processes = [
            self.sim.process(self.write(block_id, data))
            for block_id, data in items
        ]
        yield AllOf(self.sim, processes)
        return len(items)

    def read(self, block_id: int, offset: int = 0, nbytes: Optional[int] = None):
        """Read ``nbytes`` starting at ``offset`` within the block.

        Returns ``bytes`` when the block was written with real data,
        else the raw page payload list.
        """
        location = self._locations.get(block_id)
        if location is None:
            raise BlockNotFoundError(block_id)
        nbytes = self._check_range(offset, nbytes)
        if nbytes == 0:
            return b""
        obs = self.obs
        start_ns = self.sim.now
        first_page = offset // self.page_size
        last_page = (offset + nbytes - 1) // self.page_size
        channel = self.device.channels[location.channel]
        payloads = yield from channel.read(
            location.logical_block, first_page, last_page - first_page + 1
        )
        if obs is not None:
            self._m_reads.add()
            if obs.trace.enabled:
                obs.trace.span(
                    "blk/read",
                    "read",
                    start_ns,
                    self.sim.now,
                    block_id=block_id,
                    channel=location.channel,
                    nbytes=nbytes,
                )
        if all(isinstance(p, (bytes, bytearray)) for p in payloads):
            joined = b"".join(bytes(p) for p in payloads)
            start = offset - first_page * self.page_size
            return joined[start : start + nbytes]
        return payloads

    def free(self, block_id: int):
        """Release a block ID; its flash is erased per the erase policy."""
        location = self._locations.pop(block_id, None)
        if location is None:
            raise BlockNotFoundError(block_id)
        yield self._dirty[location.channel].put(location.logical_block)
        if self.obs is not None:
            self._m_frees.add()
            self._m_backlog[location.channel].update(
                self.sim.now, len(self._dirty[location.channel])
            )

    # -- erase machinery ------------------------------------------------------------
    def _acquire_block(self, channel_index: int):
        """Generator: an erased logical block on the channel.

        Background policy: wait on the ready queue (the eraser feeds it).
        Inline policy: if no block is ready, erase a dirty one now --
        paying tBERS on the write path.
        """
        ready = self._ready[channel_index]
        if self.erase_policy is ErasePolicy.INLINE and len(ready) == 0:
            logical_block = yield self._dirty[channel_index].get()
            yield from self.device.channels[channel_index].erase(logical_block)
            return logical_block
        logical_block = yield ready.get()
        return logical_block

    # -- functional (zero-time) paths for experiment preloading -------------------
    def functional_write(self, block_id: int, data=None) -> None:
        """Write a block with no simulated time (workload preloading)."""
        if block_id in self._locations:
            self.functional_free(block_id)
        channel_index = self.placement.choose(block_id, self.loads)
        ready = self._ready[channel_index]
        if not ready.items:
            raise RuntimeError(
                f"channel {channel_index} has no ready blocks to preload into"
            )
        logical_block = ready.items.popleft()
        self.device.ftls[channel_index].write(
            logical_block, self._paginate(data)
        )
        self._locations[block_id] = BlockLocation(channel_index, logical_block)
        if self._next_id <= block_id:
            self._next_id = block_id + 1

    def functional_read(self, block_id: int, offset: int = 0, nbytes=None):
        """Read with no simulated time; same semantics as :meth:`read`."""
        location = self._locations.get(block_id)
        if location is None:
            raise BlockNotFoundError(block_id)
        nbytes = self._check_range(offset, nbytes)
        if nbytes == 0:
            return b""
        first_page = offset // self.page_size
        last_page = (offset + nbytes - 1) // self.page_size
        payloads, _ = self.device.ftls[location.channel].read(
            location.logical_block, first_page, last_page - first_page + 1
        )
        if all(isinstance(p, (bytes, bytearray)) for p in payloads):
            joined = b"".join(bytes(p) for p in payloads)
            start = offset - first_page * self.page_size
            return joined[start : start + nbytes]
        return payloads

    def functional_free(self, block_id: int) -> None:
        """Free and erase with no simulated time."""
        location = self._locations.pop(block_id, None)
        if location is None:
            raise BlockNotFoundError(block_id)
        self.device.ftls[location.channel].erase(location.logical_block)
        self._ready[location.channel].items.append(location.logical_block)

    def _background_eraser(self, channel_index: int):
        """Drains the dirty queue, erasing freed blocks off-path."""
        channel = self.device.channels[channel_index]
        dirty = self._dirty[channel_index]
        ready = self._ready[channel_index]
        while True:
            logical_block = yield dirty.get()
            if self.obs is not None:
                self._m_backlog[channel_index].update(self.sim.now, len(dirty))
            yield from channel.erase(logical_block)
            self.background_erases += 1
            yield ready.put(logical_block)

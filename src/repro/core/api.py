"""Public facade: one-call construction of a ready-to-use SDF system.

:class:`SDFSystem` bundles a simulator, an SDF device and the user-space
block layer, and offers synchronous convenience wrappers so library
users (and the examples) do not need to write simulation processes for
simple cases::

    from repro import build_sdf_system

    system = build_sdf_system(capacity_scale=0.01)
    block_id = system.put(b"eight megabytes of web pages...")
    assert system.get(block_id, 0, 20) == b"eight megabytes of w"

Anything concurrent (the benchmark harness, the cluster model) drives
the generators on ``system.block_layer`` / ``system.device`` directly.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.block_layer import UserSpaceBlockLayer
from repro.core.scheduler import ErasePolicy, PlacementPolicy
from repro.devices.catalog import HUAWEI_GEN3_SPEC, build_device
from repro.devices.conventional import ConventionalSSD, ConventionalSSDSpec
from repro.devices.sdf import SDFDevice
from repro.sim import Simulator


class SDFSystem:
    """A simulator + SDF device + block layer, ready for use."""

    def __init__(
        self,
        sim: Simulator,
        device: SDFDevice,
        block_layer: UserSpaceBlockLayer,
    ):
        self.sim = sim
        self.device = device
        self.block_layer = block_layer

    # -- plane wiring ------------------------------------------------------------------
    def attach(self, plane, *, prefix: str = "") -> "SDFSystem":
        """Wire one opt-in plane into this system, dispatching on type.

        The single entry point for post-construction wiring:

        * :class:`repro.obs.Observability` -- device + block-layer
          metrics, traces and resource spans;
        * :class:`repro.faults.FaultPlan` -- chip/engine/FTL/link fault
          injectors (sites under ``prefix``);
        * :class:`repro.qos.QosPlan` -- channel and block-layer bounds
          (metrics under ``prefix``);
        * :class:`repro.policy.PolicyPlan` -- declarative self-tuning
          rules (the plan records this system as an actuator target).

        Returns ``self`` so attachments chain::

            system = build_sdf_system(capacity_scale=0.01)
            system.attach(obs).attach(plan)
        """
        from repro.faults.plan import FaultPlan
        from repro.obs.attach import Observability, _wire_system
        from repro.policy.engine import PolicyPlan
        from repro.qos.config import QosPlan

        if isinstance(plane, Observability):
            _wire_system(plane, self)
        elif isinstance(plane, FaultPlan):
            from repro.faults.wire import _wire_system_faults

            _wire_system_faults(plane, self, prefix=prefix)
        elif isinstance(plane, QosPlan):
            from repro.qos.wire import _wire_system_qos

            _wire_system_qos(plane, self, prefix=prefix)
        elif isinstance(plane, PolicyPlan):
            plane._bind_system(self)
        else:
            raise TypeError(
                f"don't know how to attach {type(plane).__name__}; expected "
                "Observability, FaultPlan, QosPlan or PolicyPlan"
            )
        return self

    # -- process driving ------------------------------------------------------------
    def run(self, generator):
        """Run one operation (a generator) to completion; returns its value."""
        return self.sim.run(until=self.sim.process(generator))

    # -- synchronous conveniences ------------------------------------------------------
    def put(self, data: Union[bytes, None] = None, block_id: Optional[int] = None) -> int:
        """Allocate (or reuse) an ID and write one block synchronously."""
        if block_id is None:
            block_id = self.block_layer.allocate_id()
        self.run(self.block_layer.write(block_id, data))
        return block_id

    def get(self, block_id: int, offset: int = 0, nbytes: Optional[int] = None):
        """Read synchronously."""
        return self.run(self.block_layer.read(block_id, offset, nbytes))

    def delete(self, block_id: int) -> None:
        """Free a block synchronously (erase happens per policy)."""
        self.run(self.block_layer.free(block_id))

    def __repr__(self):
        return (
            f"SDFSystem(channels={self.device.n_channels}, "
            f"stored_blocks={self.block_layer.stored_blocks}, "
            f"now={self.sim.now} ns)"
        )


def build_sdf_system(
    capacity_scale: float = 1.0,
    n_channels: int = 44,
    placement: Optional[PlacementPolicy] = None,
    erase_policy: ErasePolicy = ErasePolicy.BACKGROUND,
    sim: Optional[Simulator] = None,
    obs=None,
    faults=None,
    qos=None,
    **device_overrides,
) -> SDFSystem:
    """An SDF system with the paper's deployed configuration.

    ``capacity_scale`` shrinks per-plane block counts for fast runs;
    bandwidth-relevant parameters are untouched.  ``obs`` / ``faults``
    / ``qos`` attach the corresponding planes before the system is
    returned (equivalent to calling :meth:`SDFSystem.attach` on each;
    when ``obs`` is given together with a fault or QoS plan, the plan
    is also bound to it).
    """
    sim = sim if sim is not None else Simulator()
    device = build_device(
        "sdf",
        sim,
        capacity_scale=capacity_scale,
        n_channels=n_channels,
        **device_overrides,
    )
    block_layer = UserSpaceBlockLayer(device, placement, erase_policy)
    system = SDFSystem(sim, device, block_layer)
    if obs is not None:
        system.attach(obs)
    if faults is not None:
        system.attach(faults)
        if obs is not None:
            faults.attach_obs(obs)
    if qos is not None:
        system.attach(qos)
        if obs is not None:
            qos.attach_obs(obs)
    return system


def build_conventional_ssd(
    spec: ConventionalSSDSpec = HUAWEI_GEN3_SPEC,
    capacity_scale: float = 1.0,
    sim: Optional[Simulator] = None,
    store_data: bool = False,
) -> ConventionalSSD:
    """A commodity-SSD baseline (default: the Huawei Gen3)."""
    sim = sim if sim is not None else Simulator()
    return build_device(
        "conventional",
        sim,
        spec=spec,
        capacity_scale=capacity_scale,
        store_data=store_data,
    )

"""Placement and erase-scheduling policies for the block layer.

The deployed system (S2.4) hashes consecutive block IDs round-robin
over the channels and leaves smarter scheduling as future work; this
module implements both the deployed policy and the future-work ones so
the ablation benchmarks can compare them:

* :class:`RoundRobinPlacement` -- ``channel = id % n`` (deployed).
* :class:`LeastLoadedPlacement` -- pick the channel with the fewest
  outstanding writes (the paper's "load-balance-aware scheduler").
* :func:`read_priority_priorities` -- channel-engine priorities that let
  on-demand reads overtake queued writes and erases.
* :class:`ErasePolicy` -- erase freed blocks in the background
  (deployed: erases scheduled in idle periods) or inline right before
  the next write to the block (the conventional discipline Figure 8
  measures).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Protocol

from repro.ftl.ops import OpKind


class ErasePolicy(Enum):
    """When freed blocks get erased: background or inline."""

    #: Erase freed blocks from a background process (keeps erase off the
    #: write path -- the deployed SDF discipline).
    BACKGROUND = "background"
    #: Erase immediately before rewriting a block (write latency then
    #: includes tBERS, as measured for SDF in Figure 8).
    INLINE = "inline"


def read_priority_priorities() -> Dict[OpKind, int]:
    """Engine priorities putting on-demand reads first (paper S2.4)."""
    return {OpKind.READ: 0, OpKind.PROGRAM: 1, OpKind.ERASE: 2}


class PlacementPolicy(Protocol):
    """Chooses the channel that will store a new block ID."""

    def choose(self, block_id: int, loads: List[int]) -> int:
        """Return a channel index.

        ``loads`` is the current number of outstanding writes per
        channel (maintained by the block layer).
        """
        ...  # pragma: no cover


class RoundRobinPlacement:
    """The deployed policy: consecutive IDs go to consecutive channels."""

    def choose(self, block_id: int, loads: List[int]) -> int:
        """Return the channel index for this block ID."""
        return block_id % len(loads)


class LeastLoadedPlacement:
    """Future-work policy: place on the least-loaded channel.

    Ties are broken by a rotating preference so that an idle system
    still spreads IDs evenly.
    """

    def __init__(self):
        self._rotation = 0

    def choose(self, block_id: int, loads: List[int]) -> int:
        """Return the channel index for this block ID."""
        n = len(loads)
        best = min(loads)
        for offset in range(n):
            channel = (self._rotation + offset) % n
            if loads[channel] == best:
                self._rotation = (channel + 1) % n
                return channel
        raise AssertionError("unreachable: min(loads) must be present")

"""The paper's host-software layer.

SDF's hardware only becomes useful through the software wrapped around
it (S2.4): a **user-space block layer** that hands out 64-bit block IDs,
hashes them round-robin across the 44 exposed channels, enforces the
8 MB write unit, and keeps erase off the write path by erasing freed
blocks in the background.  The scheduling policies the paper sketches as
future work (read-priority service, load-balance-aware placement) live
in :mod:`repro.core.scheduler`.
"""

from repro.core.api import SDFSystem, build_conventional_ssd, build_sdf_system
from repro.core.block_layer import (
    BlockLocation,
    UserSpaceBlockLayer,
)
from repro.core.scheduler import (
    ErasePolicy,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    read_priority_priorities,
)

__all__ = [
    "UserSpaceBlockLayer",
    "BlockLocation",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "ErasePolicy",
    "read_priority_priorities",
    "SDFSystem",
    "build_sdf_system",
    "build_conventional_ssd",
]

"""Request-size distributions from the paper's workloads.

S3.3.1: "These request sizes [32 KB, 128 KB, and 512 KB] are
representative for web pages, thumbnails, and images, respectively."
S3.3.3: write request sizes are "primarily in the range between 100 KB
and 1 MB".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sim.units import KIB

#: Figure 12's request-size sweep: web page / thumbnail / image.
FIG12_REQUEST_SIZES = {
    "web-page": 32 * KIB,
    "thumbnail": 128 * KIB,
    "image": 512 * KIB,
}


@dataclass(frozen=True)
class SizeDistribution:
    """A discrete or continuous request-size distribution.

    * ``fixed=N`` -- every request is N bytes.
    * ``choices=[...]`` (+ optional ``weights``) -- sampled discretely.
    * ``lo/hi`` -- log-uniform between the bounds (heavy-ish tail, a
      reasonable stand-in for mixed media sizes).
    """

    fixed: Optional[int] = None
    choices: Optional[Sequence[int]] = None
    weights: Optional[Sequence[float]] = None
    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self):
        modes = sum(
            1
            for cond in (
                self.fixed is not None,
                self.choices is not None,
                self.lo is not None or self.hi is not None,
            )
            if cond
        )
        if modes != 1:
            raise ValueError("specify exactly one of fixed/choices/lo+hi")
        if self.fixed is not None and self.fixed < 1:
            raise ValueError("fixed size must be >= 1")
        if self.choices is not None:
            if not self.choices or any(c < 1 for c in self.choices):
                raise ValueError("choices must be non-empty positive sizes")
            if self.weights is not None and len(self.weights) != len(
                self.choices
            ):
                raise ValueError("weights must match choices")
        if self.lo is not None or self.hi is not None:
            if self.lo is None or self.hi is None or not 0 < self.lo <= self.hi:
                raise ValueError("need 0 < lo <= hi")

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one size from the distribution."""
        if self.fixed is not None:
            return self.fixed
        if self.choices is not None:
            weights = None
            if self.weights is not None:
                total = float(sum(self.weights))
                weights = [w / total for w in self.weights]
            return int(rng.choice(self.choices, p=weights))
        log_lo, log_hi = np.log(self.lo), np.log(self.hi)
        # int() truncates and exp(log(x)) can round below x, so a draw at
        # (or near) the boundary could fall outside the declared bounds.
        return min(max(int(np.exp(rng.uniform(log_lo, log_hi))), self.lo),
                   self.hi)

    def mean_estimate(self, rng: np.random.Generator, n: int = 2000) -> float:
        """Monte-Carlo estimate of the distribution's mean size."""
        return float(np.mean([self.sample(rng) for _ in range(n)]))


#: Figure 14's client write sizes: 100 KB - 1 MB.
FIG14_WRITE_SIZES = SizeDistribution(lo=100 * 1024, hi=1024 * 1024)

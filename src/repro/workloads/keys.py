"""Key-sequence generators and key-popularity models.

The paper's clients pick keys "randomly and uniformly" from a slice's
range (S3.3.1); index building scans sequentially (S3.3.2).  The
zipfian generator supports the skewed-workload ablation that motivates
the paper's future-work load-balance-aware scheduler.

Beyond the paper-figure generators, this module provides composable
**key-popularity models** for the production workload engine
(:mod:`repro.workloads.scenarios`):

* :class:`UniformKeyModel` -- every key equally likely;
* :class:`ZipfianKeyModel` -- zipf-skewed popularity with the hot ranks
  scattered over the whole range by a full-range affine permutation;
* :class:`HotSetShiftKeyModel` -- a compact hot set absorbing most of
  the traffic, whose location drifts through the keyspace over
  simulated time (cache-buster / trending-content behaviour).

Models are plain objects sampled with a caller-supplied numpy
``Generator``, so the same seed always produces the same key sequence.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

#: Multiplier seed for the affine rank permutation: the golden-ratio
#: constant used by Fibonacci hashing, decremented to the nearest value
#: coprime with the key span so the map stays a bijection.
_GOLDEN = 0x9E3779B97F4A7C15


def _coprime_multiplier(span: int) -> int:
    """The largest odd value <= ``_GOLDEN`` (mod span) coprime to span."""
    a = _GOLDEN % span
    if a < 2:
        a = span - 1 if span > 2 else 1
    while math.gcd(a, span) != 1:
        a -= 1
    return a


def sequential_keys(lo: int, hi: int) -> Iterator[int]:
    """lo, lo+1, ..., hi-1 (one full scan of the range)."""
    if not lo < hi:
        raise ValueError("empty key range")
    return iter(range(lo, hi))


def uniform_keys(
    lo: int, hi: int, rng: np.random.Generator
) -> Iterator[int]:
    """Endless uniformly random keys in [lo, hi)."""
    if not lo < hi:
        raise ValueError("empty key range")
    while True:
        yield int(rng.integers(lo, hi))


class KeyModel:
    """Base class: a deterministic key-popularity distribution.

    ``sample(rng, now_ns)`` draws one key; ``now_ns`` lets
    time-varying models (hot-set drift) shift with simulated time and
    is ignored by stationary ones.  ``stream(rng)`` is the endless
    stationary iterator the paper-figure drivers use.
    """

    lo: int
    hi: int

    def sample(self, rng: np.random.Generator, now_ns: int = 0) -> int:
        raise NotImplementedError

    def stream(self, rng: np.random.Generator) -> Iterator[int]:
        """Endless keys (stationary view: ``now_ns`` pinned to 0)."""
        while True:
            yield self.sample(rng)


class UniformKeyModel(KeyModel):
    """Uniform popularity over [lo, hi)."""

    def __init__(self, lo: int, hi: int):
        if not lo < hi:
            raise ValueError("empty key range")
        self.lo = lo
        self.hi = hi

    def sample(self, rng: np.random.Generator, now_ns: int = 0) -> int:
        return int(rng.integers(self.lo, self.hi))

    def __repr__(self):
        return f"UniformKeyModel([{self.lo}, {self.hi}))"


class ZipfianKeyModel(KeyModel):
    """Zipf-skewed popularity: rank-1 hottest, scattered over the range.

    Uses a truncated zipf over ``max_rank`` ranks, which keeps sampling
    O(1) with a precomputed CDF.  Ranks map to keys through a
    *full-range* affine permutation ``key = lo + (rank * a + b) % span``
    with ``a`` coprime to ``span`` -- a bijection over the whole
    [lo, hi), so hot keys land everywhere in the keyspace (and thus on
    every slice/node) instead of piling into a prefix.
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        theta: float = 0.99,
        max_rank: int = 10_000,
    ):
        if not lo < hi:
            raise ValueError("empty key range")
        if not 0 < theta < 2:
            raise ValueError("theta should be in (0, 2)")
        if max_rank < 1:
            raise ValueError("max_rank must be >= 1")
        self.lo = lo
        self.hi = hi
        self.theta = theta
        span = hi - lo
        self.n_ranks = min(max_rank, span)
        weights = 1.0 / np.arange(1, self.n_ranks + 1) ** theta
        self._cdf = np.cumsum(weights / weights.sum())
        self._a = _coprime_multiplier(span)
        self._b = (_GOLDEN >> 17) % span

    def rank_key(self, rank: int) -> int:
        """The key holding popularity rank ``rank`` (0 = hottest)."""
        span = self.hi - self.lo
        return self.lo + (rank * self._a + self._b) % span

    def sample(self, rng: np.random.Generator, now_ns: int = 0) -> int:
        # Float rounding can leave cdf[-1] < 1.0; a draw landing past it
        # would index one-off-the-end, so clamp to the last rank.
        rank = int(np.searchsorted(self._cdf, rng.random()))
        if rank >= self.n_ranks:
            rank = self.n_ranks - 1
        return self.rank_key(rank)

    def __repr__(self):
        return (
            f"ZipfianKeyModel([{self.lo}, {self.hi}), theta={self.theta}, "
            f"ranks={self.n_ranks})"
        )


class HotSetShiftKeyModel(KeyModel):
    """A drifting hot set: ``hot_weight`` of traffic hits a window of
    ``hot_keys`` consecutive keys; the rest is uniform over the range.

    Every ``shift_period_ns`` of simulated time the window advances by
    one window-width (wrapping), modelling trending content: what was
    hot an hour ago cools off, and rebalancers/caches tuned to the old
    hot set must chase the new one.
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        hot_keys: int = 1024,
        hot_weight: float = 0.9,
        shift_period_ns: int = 0,
    ):
        if not lo < hi:
            raise ValueError("empty key range")
        if not 0 < hot_keys <= hi - lo:
            raise ValueError("hot_keys must be in [1, hi-lo]")
        if not 0.0 <= hot_weight <= 1.0:
            raise ValueError("hot_weight must be in [0, 1]")
        if shift_period_ns < 0:
            raise ValueError("shift_period_ns must be >= 0 (0 = static)")
        self.lo = lo
        self.hi = hi
        self.hot_keys = hot_keys
        self.hot_weight = hot_weight
        self.shift_period_ns = shift_period_ns

    def hot_window(self, now_ns: int = 0) -> tuple:
        """The [lo, hi) bounds of the hot window at ``now_ns``."""
        span = self.hi - self.lo
        shifts = (
            now_ns // self.shift_period_ns if self.shift_period_ns else 0
        )
        start = self.lo + (shifts * self.hot_keys) % span
        return start, start + min(self.hot_keys, span)

    def sample(self, rng: np.random.Generator, now_ns: int = 0) -> int:
        if rng.random() < self.hot_weight:
            start, end = self.hot_window(now_ns)
            key = int(rng.integers(start, end))
            # The window may hang off the end of the range; wrap it.
            if key >= self.hi:
                key = self.lo + (key - self.hi)
            return key
        return int(rng.integers(self.lo, self.hi))

    def __repr__(self):
        return (
            f"HotSetShiftKeyModel([{self.lo}, {self.hi}), "
            f"hot={self.hot_keys}@{self.hot_weight}, "
            f"period={self.shift_period_ns}ns)"
        )


def zipfian_keys(
    lo: int,
    hi: int,
    rng: np.random.Generator,
    theta: float = 0.99,
    max_rank: int = 10_000,
) -> Iterator[int]:
    """Endless zipf-skewed keys in [lo, hi) (rank-1 key is hottest).

    Generator facade over :class:`ZipfianKeyModel` (which documents the
    full-range rank scattering and sampling mechanics).
    """
    model = ZipfianKeyModel(lo, hi, theta=theta, max_rank=max_rank)
    return model.stream(rng)

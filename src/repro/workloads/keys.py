"""Key-sequence generators.

The paper's clients pick keys "randomly and uniformly" from a slice's
range (S3.3.1); index building scans sequentially (S3.3.2).  The
zipfian generator supports the skewed-workload ablation that motivates
the paper's future-work load-balance-aware scheduler.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def sequential_keys(lo: int, hi: int) -> Iterator[int]:
    """lo, lo+1, ..., hi-1 (one full scan of the range)."""
    if not lo < hi:
        raise ValueError("empty key range")
    return iter(range(lo, hi))


def uniform_keys(
    lo: int, hi: int, rng: np.random.Generator
) -> Iterator[int]:
    """Endless uniformly random keys in [lo, hi)."""
    if not lo < hi:
        raise ValueError("empty key range")
    while True:
        yield int(rng.integers(lo, hi))


def zipfian_keys(
    lo: int,
    hi: int,
    rng: np.random.Generator,
    theta: float = 0.99,
    max_rank: int = 10_000,
) -> Iterator[int]:
    """Endless zipf-skewed keys in [lo, hi) (rank-1 key is hottest).

    Uses a truncated zipf over ``max_rank`` ranks mapped into the range,
    which keeps sampling O(1) with a precomputed CDF.
    """
    if not lo < hi:
        raise ValueError("empty key range")
    if not 0 < theta < 2:
        raise ValueError("theta should be in (0, 2)")
    n_ranks = min(max_rank, hi - lo)
    weights = 1.0 / np.arange(1, n_ranks + 1) ** theta
    cdf = np.cumsum(weights / weights.sum())
    # A fixed pseudo-random permutation spreads hot ranks over the range.
    perm = np.random.default_rng(12345).permutation(n_ranks)
    while True:
        rank = int(np.searchsorted(cdf, rng.random()))
        yield lo + int(perm[rank]) % (hi - lo)

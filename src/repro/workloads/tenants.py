"""Multi-tenant workload declarations: operation mixes and SLOs.

RackBlox's case for software-defined storage evaluation is that tenants
share the device *and* interfere: a read-heavy latency-sensitive tenant
co-resides with a write-heavy bulk tenant, and the system's QoS story is
judged per tenant, not in aggregate.  A :class:`TenantSpec` bundles
everything one tenant contributes to a scenario:

* a YCSB-style :class:`OpMix` (read/write/scan ratios);
* a key-popularity model (:mod:`repro.workloads.keys`);
* a value-size distribution (:mod:`repro.workloads.distributions`);
* an arrival :class:`~repro.workloads.arrivals.RateSchedule`;
* an :class:`SloSpec` -- the deadline stamped on its requests and the
  targets its goodput/p99 are judged against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.units import MS
from repro.workloads.arrivals import RateSchedule
from repro.workloads.distributions import SizeDistribution
from repro.workloads.keys import KeyModel

#: Operation kinds a tenant mix may weight.
OP_KINDS = ("read", "write", "scan")


@dataclass(frozen=True)
class OpMix:
    """YCSB-style operation ratios (normalised at construction)."""

    read: float = 1.0
    write: float = 0.0
    scan: float = 0.0

    def __post_init__(self):
        total = self.read + self.write + self.scan
        if total <= 0 or min(self.read, self.write, self.scan) < 0:
            raise ValueError("mix weights must be >= 0 and sum > 0")
        object.__setattr__(self, "read", self.read / total)
        object.__setattr__(self, "write", self.write / total)
        object.__setattr__(self, "scan", self.scan / total)

    def sample(self, rng: np.random.Generator) -> str:
        """Draw one operation kind according to the ratios."""
        draw = rng.random()
        if draw < self.read:
            return "read"
        if draw < self.read + self.write:
            return "write"
        return "scan"

    def ratio(self, kind: str) -> float:
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        return getattr(self, kind)


#: YCSB-A: 50/50 read/update.
YCSB_A = OpMix(read=0.5, write=0.5)
#: YCSB-B: 95/5 read-mostly.
YCSB_B = OpMix(read=0.95, write=0.05)
#: YCSB-C: read-only.
YCSB_C = OpMix(read=1.0)
#: YCSB-E-ish: scan-heavy with a write trickle.
YCSB_E = OpMix(read=0.0, write=0.05, scan=0.95)


@dataclass(frozen=True)
class SloSpec:
    """One tenant's service-level objective.

    ``deadline_ns`` is stamped on every request (admission control sheds
    what cannot finish in time); ``target_p99_ns``/``min_goodput_rps``
    are the report-card thresholds the scenario report annotates --
    declared here, judged by the caller.
    """

    deadline_ns: int = 50 * MS
    target_p99_ns: Optional[int] = None
    min_goodput_rps: Optional[float] = None

    def __post_init__(self):
        if self.deadline_ns < 1:
            raise ValueError("deadline_ns must be >= 1")
        if self.target_p99_ns is not None and self.target_p99_ns < 1:
            raise ValueError("target_p99_ns must be >= 1 or None")
        if self.min_goodput_rps is not None and self.min_goodput_rps <= 0:
            raise ValueError("min_goodput_rps must be > 0 or None")


@dataclass(frozen=True)
class TenantSpec:
    """Everything one tenant contributes to a scenario."""

    name: str
    mix: OpMix
    keys: KeyModel
    sizes: SizeDistribution
    arrivals: RateSchedule
    slo: SloSpec = SloSpec()
    #: Consecutive keys touched by one scan operation.
    scan_span: int = 64

    def __post_init__(self):
        if not self.name or "." in self.name or "/" in self.name:
            raise ValueError(
                f"tenant name must be non-empty without './': {self.name!r}"
            )
        if self.scan_span < 1:
            raise ValueError("scan_span must be >= 1")

"""Fleet-day scenarios: seeded, deterministic production workloads.

This is the production workload engine the roadmap asks for: a scenario
composes key-popularity models, YCSB-style per-tenant operation mixes,
open-loop arrival schedules (diurnal waves, flash crowds), value-size
distributions and per-tenant SLOs, and runs them against a multi-node
cluster with every plane attached at once -- observability, fault
injection, QoS admission/breakers and the control-plane rebalancer.

The contract matches the rest of the repo's planes:

* **Deterministic** -- a :class:`Scenario` plus its seed fully determines
  the simulated run; :meth:`ScenarioResult.to_json` is byte-identical
  across repeated runs.
* **Composable** -- tenants are independent declarations; planes are
  opt-in (``qos=None`` runs unprotected, ``faults`` empty runs clean).
* **Reported through repro.obs** -- per-tenant goodput/latency live in
  the metrics registry under ``tenant.{name}.*`` labels; the result
  object is assembled *from* the registry snapshot, so anything the
  report shows is also visible to metric-driven tooling.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, TransientFault
from repro.faults.injector import BROWNOUT, CRASH
from repro.faults.plan import FaultPlan
from repro.faults.runner import FaultRunner
from repro.obs.attach import Observability
from repro.obs.metrics import Histogram
from repro.sim import Simulator
from repro.sim.shard import SealedHorizonMerger, run_sharded
from repro.sim.units import MS, S
from repro.workloads.arrivals import OpenLoopArrivals
from repro.workloads.tenants import TenantSpec

#: Bounded per-request retry budget (shed/drop/redirect recovery).
MAX_ATTEMPTS = 6
RETRY_BACKOFF_NS = 2 * MS


@dataclass(frozen=True)
class FaultBurst:
    """One scheduled node fault inside a scenario.

    ``node`` indexes the scenario's nodes (``n0``, ``n1``, ...);
    ``kind`` is :data:`~repro.faults.injector.CRASH` or
    :data:`~repro.faults.injector.BROWNOUT` (``multiplier`` applies to
    brownouts only).
    """

    node: int
    at_ns: int
    duration_ns: int
    kind: str = CRASH
    multiplier: float = 10.0

    def __post_init__(self):
        if self.node < 0:
            raise ValueError("node index must be >= 0")
        if self.at_ns < 0 or self.duration_ns < 1:
            raise ValueError("need at_ns >= 0 and duration_ns >= 1")
        if self.kind not in (CRASH, BROWNOUT):
            raise ValueError(f"kind must be crash/brownout, got {self.kind!r}")


@dataclass(frozen=True)
class Scenario:
    """A declarative fleet-day: cluster shape + tenants + disruptions."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    duration_ns: int = S
    n_nodes: int = 3
    n_slices: int = 6
    key_span: int = 60_000
    seed: int = 0
    faults: Tuple[FaultBurst, ...] = ()
    #: Period of control-plane rebalance passes (None = rebalancer off).
    rebalance_every_ns: Optional[int] = None
    rebalance_imbalance: float = 2.5
    #: Keys functionally preloaded per slice (read working set).
    preload_keys_per_slice: int = 48
    preload_value_bytes: int = 16 * 1024
    memtable_bytes: int = 256 * 1024
    #: Per-node device scale-down (see benchmarks/_bench_common.py).
    capacity_scale: float = 0.01
    n_channels: int = 4
    #: Storage backend per node -- any registered device kind
    #: (``repro.devices.device_kinds()``): "sdf", "conventional",
    #: "dftl", "hybrid", "mqftl", "zoned".
    device_kind: str = "sdf"

    def __post_init__(self):
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if len({t.name for t in self.tenants}) != len(self.tenants):
            raise ValueError("tenant names must be unique")
        if self.n_nodes < 1 or self.n_slices < 1:
            raise ValueError("need n_nodes >= 1 and n_slices >= 1")
        if self.key_span < self.n_slices:
            raise ValueError("key_span must cover at least one key per slice")
        if self.duration_ns < 1:
            raise ValueError("duration_ns must be >= 1")
        from repro.devices.catalog import device_kinds

        if self.device_kind not in device_kinds():
            raise ConfigError(
                f"unknown device kind {self.device_kind!r}; known kinds: "
                f"{', '.join(device_kinds())}"
            )
        for burst in self.faults:
            if burst.node >= self.n_nodes:
                raise ValueError(
                    f"fault burst targets node {burst.node} but the "
                    f"scenario has {self.n_nodes} nodes"
                )
        for tenant in self.tenants:
            if tenant.keys.lo < 0 or tenant.keys.hi > self.key_span:
                raise ValueError(
                    f"tenant {tenant.name!r} key model "
                    f"[{tenant.keys.lo}, {tenant.keys.hi}) outside the "
                    f"scenario keyspace [0, {self.key_span})"
                )


@dataclass
class TenantReport:
    """Per-tenant outcome summary (assembled from the obs registry)."""

    name: str
    offered: int = 0
    good: int = 0
    late: int = 0
    shed: int = 0
    retries: int = 0
    goodput_rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    deadline_ms: float = 0.0
    p99_slo_ok: Optional[bool] = None
    goodput_slo_ok: Optional[bool] = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "offered": self.offered,
            "good": self.good,
            "late": self.late,
            "shed": self.shed,
            "retries": self.retries,
            "goodput_rps": round(self.goodput_rps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "deadline_ms": round(self.deadline_ms, 4),
            "p99_slo_ok": self.p99_slo_ok,
            "goodput_slo_ok": self.goodput_slo_ok,
        }


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: str
    seed: int
    duration_ns: int
    sim_end_ns: int
    tenants: Dict[str, TenantReport] = field(default_factory=dict)
    faults_fired: int = 0
    migrations_completed: int = 0
    migrations_aborted: int = 0
    rebalance_moves: int = 0
    policy_fires: int = 0
    snapshot: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """A canonical (sorted, byte-stable) JSON report."""
        return json.dumps(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "duration_ns": self.duration_ns,
                "sim_end_ns": self.sim_end_ns,
                "tenants": {
                    name: report.as_dict()
                    for name, report in sorted(self.tenants.items())
                },
                "faults_fired": self.faults_fired,
                "migrations_completed": self.migrations_completed,
                "migrations_aborted": self.migrations_aborted,
                "rebalance_moves": self.rebalance_moves,
                "policy_fires": self.policy_fires,
            },
            sort_keys=True,
        )


class ScenarioRunner:
    """Builds the cluster, wires the planes, and drives one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        qos=None,
        obs: Optional[Observability] = None,
        policy=None,
        only_node: Optional[int] = None,
    ):
        from repro.cluster.control import ClusterController
        from repro.cluster.network import Network
        from repro.cluster.node import build_storage_server
        from repro.kv.slice import KeyRange

        self.scenario = scenario
        self.qos = qos
        #: Sharded mode: build and simulate only this node (plus the
        #: tenant drivers, which run everywhere so every shard draws the
        #: full arrival chronology and skips foreign-owned requests).
        self.only_node = only_node
        self._local_name = f"n{only_node}" if only_node is not None else None
        if only_node is not None and not (0 <= only_node < scenario.n_nodes):
            raise ConfigError(
                f"only_node {only_node} outside [0, {scenario.n_nodes})"
            )
        # An empty PolicyPlan must leave the run untouched (the no-drift
        # contract every plane honours), so it is simply not wired.
        self.policy = policy if policy is not None and policy.rules else None
        self.policy_engine = None
        self.sim = Simulator()
        self.obs = obs if obs is not None else Observability()
        self.network = Network(self.sim)
        self.plan = FaultPlan(seed=scenario.seed)
        for burst in scenario.faults:
            if only_node is not None and burst.node != only_node:
                continue  # foreign node: its shard schedules it
            kwargs = (
                {"multiplier": burst.multiplier}
                if burst.kind == BROWNOUT
                else {}
            )
            self.plan.schedule(
                f"n{burst.node}",
                burst.kind,
                burst.at_ns,
                burst.duration_ns,
                **kwargs,
            )
        self.ctrl = ClusterController(self.sim, self.network)
        self.ctrl.attach(self.obs)
        self.ctrl.attach(self.plan)
        if qos is not None:
            self.ctrl.attach(qos)
            # Mirror shed/stall/breaker counters into the registry:
            # policy rules read them (``qos.{node}.shed_reads``), and
            # operators get them in the result snapshot for free.
            qos.attach_obs(self.obs)
        if self.policy is not None:
            self.ctrl.attach(self.policy)
            self.policy.attach_obs(self.obs)
        self.runner = FaultRunner(self.sim, self.plan)
        self.breakers: Dict[str, object] = {}
        for index in range(scenario.n_nodes):
            if only_node is not None and index != only_node:
                continue
            name = f"n{index}"
            server = build_storage_server(
                self.sim,
                [],
                device_kind=scenario.device_kind,
                capacity_scale=scenario.capacity_scale,
                n_channels=scenario.n_channels,
            )
            self.ctrl.add_node(name, server)
            server.attach(self.obs)
            server.attach(self.plan, name=name)
            if qos is not None:
                server.attach(qos, name=name)
                breaker = qos.make_breaker(self.sim, name=f"breaker.{name}")
                if breaker is not None:
                    self.breakers[name] = breaker
            if self.policy is not None:
                server.attach(self.policy, name=name)
            self.runner.bind(name, server)
        # Slices partition [0, key_span), placed round-robin.  Placement
        # is computed over the *global* (lexicographically sorted) node
        # names even in sharded mode, so every shard agrees on who owns
        # what and the local subset matches the in-process layout.
        span = scenario.key_span
        bounds = [
            span * index // scenario.n_slices
            for index in range(scenario.n_slices + 1)
        ]
        self._slice_los: List[int] = bounds[:-1]
        node_names = sorted(f"n{i}" for i in range(scenario.n_nodes))
        self._owners: List[str] = [
            node_names[index % len(node_names)]
            for index in range(scenario.n_slices)
        ]
        for index in range(scenario.n_slices):
            owner = self._owners[index]
            if self._local_name is not None and owner != self._local_name:
                continue
            self.ctrl.create_slice(
                KeyRange(bounds[index], bounds[index + 1]),
                on=[owner],
                memtable_bytes=scenario.memtable_bytes,
            )
        self._preload()
        self.outcomes = {
            t.name: {"good": 0, "late": 0, "shed": 0, "retries": 0,
                     "offered": 0}
            for t in scenario.tenants
        }

    # -- setup -------------------------------------------------------------------------
    def _preload(self) -> None:
        """Functionally populate every slice's read working set."""
        scenario = self.scenario
        for name in sorted(self.ctrl.nodes):
            server = self.ctrl.nodes[name]
            for slice_ in server.slices:
                lo = slice_.key_range.lo
                count = min(
                    scenario.preload_keys_per_slice,
                    slice_.key_range.hi - lo,
                )
                server.preload(
                    slice_,
                    [lo + offset for offset in range(count)],
                    scenario.preload_value_bytes,
                )

    def _quantize(self, key: int) -> int:
        """Fold a raw key onto its slice's preloaded working set.

        Read/scan keys must hit data; writes use the raw key.  The fold
        keeps the slice (so skew still lands where the popularity model
        put it) and wraps the offset into the preloaded prefix.
        """
        index = bisect.bisect_right(self._slice_los, key) - 1
        lo = self._slice_los[index]
        hi = (
            self._slice_los[index + 1]
            if index + 1 < len(self._slice_los)
            else self.scenario.key_span
        )
        count = min(self.scenario.preload_keys_per_slice, hi - lo)
        return lo + (key - lo) % count

    # -- request execution -------------------------------------------------------------
    def _one_request(self, tenant: TenantSpec, view, op, key, size, rng_seed):
        """Generator: one open-loop request with bounded shed/retry."""
        sim = self.sim
        outcomes = self.outcomes[tenant.name]
        metrics = self.obs.metrics
        deadline = sim.now + tenant.slo.deadline_ns
        start = sim.now
        rng = np.random.default_rng(rng_seed)
        for attempt in range(MAX_ATTEMPTS):
            if attempt > 0:
                outcomes["retries"] += 1
                metrics.counter(f"tenant.{tenant.name}.retries").add(1)
                backoff = RETRY_BACKOFF_NS << (attempt - 1)
                yield sim.timeout(int(backoff * (1.0 + rng.random())))
                view.refresh()
            if sim.now > deadline:
                break  # doomed: the SLO window is already gone
            try:
                server, entry = view.lookup(key)
            except KeyError:
                continue  # stale view names a since-split slice
            breaker = self.breakers.get(self._node_name(server))
            if breaker is not None and not breaker.allow():
                continue  # fast local failure; retry elsewhere/later
            try:
                if op == "read":
                    yield from server.handle_get(
                        key,
                        deadline_ns=deadline,
                        epoch=entry.epoch,
                        tenant=tenant.name,
                    )
                elif op == "write":
                    from repro.kv.common import PlaceholderValue

                    yield from server.handle_put(
                        key,
                        PlaceholderValue(size),
                        deadline_ns=deadline,
                        epoch=entry.epoch,
                        tenant=tenant.name,
                    )
                else:  # scan
                    yield from self._scan(
                        server, tenant, key, deadline
                    )
            except (TransientFault, KeyError):
                if breaker is not None:
                    breaker.record_failure()
                continue
            if breaker is not None:
                breaker.record_success()
            latency = sim.now - start
            metrics.histogram(f"tenant.{tenant.name}.request_ns").record(
                latency
            )
            if sim.now <= deadline:
                outcomes["good"] += 1
                metrics.counter(f"tenant.{tenant.name}.good").add(1)
            else:
                outcomes["late"] += 1
                metrics.counter(f"tenant.{tenant.name}.late").add(1)
            return
        outcomes["shed"] += 1
        metrics.counter(f"tenant.{tenant.name}.shed").add(1)

    def _scan(self, server, tenant: TenantSpec, key: int, deadline: int):
        """One scan: plan the range, read at most one backing patch."""
        hi = min(key + tenant.scan_span, self.scenario.key_span)
        if hi <= key:
            hi = key + 1
        plan = server.scan_plan(key, hi)
        for slice_, _memory_items, runs in plan:
            if runs:
                yield from server.handle_patch_read(
                    runs[0].handle,
                    slice_=slice_,
                    deadline_ns=deadline,
                    tenant=tenant.name,
                )
                return
        # Entirely memory-resident: charge one dispatch quantum.
        yield self.sim.timeout(server.per_request_cpu_ns)

    def _node_name(self, server) -> Optional[str]:
        for name, node in self.ctrl.nodes.items():
            if node is server:
                return name
        return None

    def _tenant_driver(self, tenant: TenantSpec, index: int):
        """Open-loop arrivals: spawn one request process per arrival.

        Every random draw happens *here*, in arrival order, so the
        request interleaving downstream can never perturb the sampled
        workload -- the key to byte-identical reruns.
        """
        sim = self.sim
        scenario = self.scenario
        rng = np.random.default_rng([scenario.seed, index])
        view = self.ctrl.view()
        arrivals = OpenLoopArrivals(tenant.arrivals)
        outcomes = self.outcomes[tenant.name]
        metrics = self.obs.metrics
        for at_ns in arrivals.times(rng, 0, scenario.duration_ns):
            delay = at_ns - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            op = tenant.mix.sample(rng)
            key = tenant.keys.sample(rng, sim.now)
            if op != "write":
                key = self._quantize(key)
            size = tenant.sizes.sample(rng)
            seed = int(rng.integers(0, 2**31))
            if self._local_name is not None:
                # Sharded: every shard makes every draw above (keeping
                # the RNG stream byte-identical) but only the owning
                # shard issues the request.
                slice_index = bisect.bisect_right(self._slice_los, key) - 1
                if self._owners[slice_index] != self._local_name:
                    continue
            outcomes["offered"] += 1
            metrics.counter(f"tenant.{tenant.name}.offered").add(1)
            sim.process(
                self._one_request(tenant, view, op, key, size, seed)
            )

    def _rebalancer(self):
        """Periodic load-driven rebalance passes for the whole run."""
        scenario = self.scenario
        while self.sim.now < scenario.duration_ns:
            yield self.sim.timeout(scenario.rebalance_every_ns)
            try:
                yield from self.ctrl.rebalance(
                    imbalance=scenario.rebalance_imbalance
                )
            except (TransientFault, KeyError):
                # An injected abort or a node crash mid-migration:
                # routing rolled back; try again next pass.
                pass

    # -- run ---------------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        scenario = self.scenario
        self.runner.start()
        if self.policy is not None:
            from repro.policy.engine import PolicyEngine

            self.policy_engine = PolicyEngine(
                self.policy, self.sim, obs=self.obs
            )
            # Stop ticking at duration_ns so the post-deadline drain is
            # pure drain -- the engine never acts on a closing system.
            self.policy_engine.start(until_ns=scenario.duration_ns)
        for index, tenant in enumerate(scenario.tenants):
            self.sim.process(self._tenant_driver(tenant, index))
        if scenario.rebalance_every_ns is not None:
            self.sim.process(self._rebalancer())
        # Drain: drivers stop issuing at duration_ns; in-flight
        # requests, retries, flushes and migrations run to completion.
        self.sim.run()
        return self._report()

    def _report(self) -> ScenarioResult:
        scenario = self.scenario
        snapshot = self.obs.metrics.snapshot(self.sim.now)
        result = ScenarioResult(
            scenario=scenario.name,
            seed=scenario.seed,
            duration_ns=scenario.duration_ns,
            sim_end_ns=self.sim.now,
            faults_fired=self.plan.fault_count(),
            migrations_completed=self.ctrl.migrations_completed.value,
            migrations_aborted=self.ctrl.migrations_aborted.value,
            rebalance_moves=self.ctrl.rebalance_moves.value,
            policy_fires=(
                self.policy_engine.total_fires
                if self.policy_engine is not None
                else 0
            ),
            snapshot=snapshot,
        )
        duration_s = scenario.duration_ns / 1e9
        for tenant in scenario.tenants:
            # Assembled *from the registry*: the per-tenant labels the
            # servers and drivers recorded are the source of truth.
            latency = snapshot.get(
                f"tenant.{tenant.name}.request_ns", {"count": 0}
            )
            counts = {
                field_name: int(
                    snapshot.get(f"tenant.{tenant.name}.{field_name}", 0)
                )
                for field_name in ("offered", "good", "late", "shed",
                                   "retries")
            }
            result.tenants[tenant.name] = _tenant_report(
                tenant, counts, latency, duration_s
            )
        return result


def _tenant_report(
    tenant: TenantSpec, counts: dict, latency: dict, duration_s: float
) -> TenantReport:
    """Assemble one tenant's report from counts + a latency summary.

    Shared by the in-process and sharded paths so the derived floats
    (goodput, ms conversions, SLO booleans) go through one code path --
    identical arithmetic, byte-identical ``to_json``.
    """
    report = TenantReport(
        name=tenant.name,
        offered=int(counts.get("offered", 0)),
        good=int(counts.get("good", 0)),
        late=int(counts.get("late", 0)),
        shed=int(counts.get("shed", 0)),
        retries=int(counts.get("retries", 0)),
        deadline_ms=tenant.slo.deadline_ns / 1e6,
    )
    report.goodput_rps = report.good / duration_s
    if latency["count"]:
        report.p50_ms = latency["p50"] / 1e6
        report.p99_ms = latency["p99"] / 1e6
    if tenant.slo.target_p99_ns is not None:
        report.p99_slo_ok = bool(
            latency["count"] and latency["p99"] <= tenant.slo.target_p99_ns
        )
    if tenant.slo.min_goodput_rps is not None:
        report.goodput_slo_ok = bool(
            report.goodput_rps >= tenant.slo.min_goodput_rps
        )
    return report


def run_scenario(
    scenario: Scenario,
    qos=None,
    obs: Optional[Observability] = None,
    policy=None,
    shard_workers: Optional[int] = None,
) -> ScenarioResult:
    """Build, wire and run one scenario; returns its result.

    ``shard_workers`` switches to sharded execution: one sub-simulation
    per node across that many worker processes, with a byte-identical
    ``to_json`` regardless of worker count (see
    :func:`run_scenario_sharded` for the eligibility rules).
    """
    if shard_workers is not None:
        return run_scenario_sharded(
            scenario, shard_workers, qos=qos, policy=policy
        )
    return ScenarioRunner(scenario, qos=qos, obs=obs, policy=policy).run()


# -- sharded execution ------------------------------------------------------------


def _clone_qos(qos):
    """A fresh single-use :class:`~repro.qos.config.QosPlan` from a
    caller plan's frozen sub-configs (plans hold per-run mutable state
    and must never be reused across simulations)."""
    if qos is None:
        return None
    from repro.qos.config import QosPlan

    return QosPlan(
        channel=qos.channel,
        write_stall=qos.write_stall,
        admission=qos.admission,
        migration=qos.migration,
        breaker=qos.breaker,
    )


def _shard_node_payload(scenario: Scenario, node_index: int, qos) -> dict:
    """Worker body: simulate one node's shard, return plain-data results."""
    runner = ScenarioRunner(
        scenario,
        qos=_clone_qos(qos),
        obs=Observability(),
        only_node=node_index,
    )
    result = runner.run()
    metrics = runner.obs.metrics
    return {
        "node": node_index,
        "events": int(runner.sim._seq),
        "sim_end_ns": int(runner.sim.now),
        "faults_fired": runner.plan.fault_count(),
        "fault_log": list(runner.plan.signatures()),
        "outcomes": runner.outcomes,
        "samples": {
            tenant.name: list(
                metrics.histogram(
                    f"tenant.{tenant.name}.request_ns"
                ).samples
            )
            for tenant in scenario.tenants
        },
        "result_json": result.to_json(),
    }


def _merge_payloads(scenario: Scenario, payloads: list) -> ScenarioResult:
    """Deterministic merge of per-node shard payloads.

    Tenant counts are order-free sums; latency percentiles are computed
    by pooling every shard's samples into one fresh histogram and going
    through the same ``summary()`` path as the in-process report; the
    fault logs merge chronologically through the sealed-horizon merger.
    """
    merger = SealedHorizonMerger(len(payloads))
    for stream, payload in enumerate(payloads):
        for signature in payload["fault_log"]:
            # signature[2] is the event's at_ns (see FaultEvent).
            merger.push(stream, signature[2], tuple(signature))
        merger.advance(stream, payload["sim_end_ns"])
    fault_log = merger.drain()

    duration_s = scenario.duration_ns / 1e9
    result = ScenarioResult(
        scenario=scenario.name,
        seed=scenario.seed,
        duration_ns=scenario.duration_ns,
        sim_end_ns=max(p["sim_end_ns"] for p in payloads),
        faults_fired=sum(p["faults_fired"] for p in payloads),
        snapshot={
            "faults.merged_log": fault_log,
            # Deterministic total event count across shards (the perf
            # harness gates on it, like sim._seq for in-process runs).
            "shard.events": sum(p["events"] for p in payloads),
        },
    )
    for tenant in scenario.tenants:
        counts: Dict[str, int] = {}
        for payload in payloads:
            for field_name, value in payload["outcomes"][tenant.name].items():
                counts[field_name] = counts.get(field_name, 0) + value
        pooled = Histogram(f"tenant.{tenant.name}.request_ns")
        for payload in payloads:
            pooled._samples.extend(payload["samples"][tenant.name])
        latency = pooled.summary()
        result.snapshot[pooled.name] = latency
        for field_name, value in sorted(counts.items()):
            result.snapshot[f"tenant.{tenant.name}.{field_name}"] = value
        result.tenants[tenant.name] = _tenant_report(
            tenant, counts, latency, duration_s
        )
    return result


def run_scenario_sharded(
    scenario: Scenario,
    workers: int,
    qos=None,
    policy=None,
    inline: bool = False,
) -> ScenarioResult:
    """Run one scenario as per-node shards in worker processes.

    Eligible only when the control plane is *static* for the run -- no
    rebalancer and no (non-empty) policy plan -- because those act on
    cross-node state mid-run, which would couple the shards.  Every
    shard replays the full tenant-driver chronology (all RNG draws) and
    issues only its own node's requests, so per-node event streams are
    identical to the in-process run's restriction to that node, and the
    merged :meth:`ScenarioResult.to_json` is byte-identical to the
    in-process result for any worker count (1, 2, N -- see
    :mod:`repro.sim.shard` for why worker count cannot matter).

    The caller's ``qos`` plan is treated as a template: each shard
    rebuilds a fresh single-use plan from its frozen sub-configs.
    Per-shard observability stays inside the workers (plain-data
    summaries cross the process boundary); attach a full
    :class:`Observability` via the in-process path when you need traces.
    """
    if scenario.rebalance_every_ns is not None:
        raise ConfigError(
            "sharded execution requires a static control plane: "
            "disable the rebalancer (rebalance_every_ns=None)"
        )
    if policy is not None and getattr(policy, "rules", None):
        raise ConfigError(
            "sharded execution requires a static control plane: "
            "policy plans with rules act across nodes mid-run"
        )
    tasks = [
        (lambda index=index: _shard_node_payload(scenario, index, qos))
        for index in range(scenario.n_nodes)
    ]
    payloads = run_sharded(tasks, workers, inline=inline)
    return _merge_payloads(scenario, payloads)

"""Closed-loop device drivers for the microbenchmark experiments.

These implement the measurement procedures of S3.2 (Table 4, Figure 7):

* SDF: "we use 44 threads -- one for each channel -- ... all requests
  are synchronously issued and the benchmarks issue requests as rapidly
  as possible to keep all channels busy."
* Commodity SSDs: "only one thread is used because they expose only one
  channel, and the thread issues asynchronous requests" -- modeled as a
  configurable queue depth of outstanding requests.

Every driver returns the aggregate data throughput in decimal MB/s over
the measurement window (excluding warmup).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.devices.conventional import ConventionalSSD
from repro.devices.sdf import SDFDevice
from repro.sim import AllOf, Simulator
from repro.sim.stats import ThroughputMeter


def _window_mb_per_s(meter: ThroughputMeter, start: int, end: int) -> float:
    if end <= start:
        return 0.0
    return meter.bytes_in(start, end) / 1e6 / ((end - start) / 1e9)


def drive_sdf_reads(
    sim: Simulator,
    sdf: SDFDevice,
    request_bytes: int,
    duration_ns: int,
    channels: Optional[Sequence[int]] = None,
    threads_per_channel: int = 1,
    rng: Optional[np.random.Generator] = None,
    sequential: bool = False,
    warmup_ns: int = 0,
) -> float:
    """Synchronous reads, one (or more) thread per exposed channel.

    Channels must already hold data (use ``sdf.prefill``).  Random mode
    picks a random mapped block and a random aligned offset; sequential
    mode walks blocks and offsets in order.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    page = sdf.array.geometry.page_size
    n_pages = max(1, request_bytes // page)
    meter = ThroughputMeter("sdf.read")
    deadline = sim.now + duration_ns
    measure_from = sim.now + warmup_ns
    targets = list(channels) if channels is not None else range(sdf.n_channels)

    def reader(channel_device, seed):
        local = np.random.default_rng(seed)
        ftl = channel_device.ftl
        mapped = [
            block
            for block in range(ftl.n_logical_blocks)
            if ftl.is_mapped(block)
        ]
        if not mapped:
            raise RuntimeError("channel holds no data; prefill the device")
        slots = ftl.pages_per_logical_block // n_pages
        if slots < 1:
            raise ValueError("request larger than a logical block")
        cursor = 0
        while sim.now < deadline:
            if sequential:
                block = mapped[(cursor // slots) % len(mapped)]
                offset = (cursor % slots) * n_pages
                cursor += 1
            else:
                block = mapped[int(local.integers(len(mapped)))]
                offset = int(local.integers(slots)) * n_pages
            yield from channel_device.read(block, offset, n_pages)
            meter.record(sim.now, n_pages * page)

    procs = [
        sim.process(reader(sdf.channels[channel], 1000 + channel * 7 + t))
        for channel in targets
        for t in range(threads_per_channel)
    ]
    sim.run(until=AllOf(sim, procs))
    return _window_mb_per_s(meter, measure_from, deadline)


def drive_sdf_writes(
    sim: Simulator,
    sdf: SDFDevice,
    duration_ns: int,
    channels: Optional[Sequence[int]] = None,
    warmup_ns: int = 0,
    include_erase: bool = True,
) -> float:
    """Synchronous 8 MB writes, one thread per channel, cycling over
    each channel's logical blocks (erasing before rewrite)."""
    meter = ThroughputMeter("sdf.write")
    deadline = sim.now + duration_ns
    measure_from = sim.now + warmup_ns
    targets = list(channels) if channels is not None else range(sdf.n_channels)

    def writer(channel_device):
        block = 0
        n_blocks = channel_device.n_logical_blocks
        while sim.now < deadline:
            target = block % n_blocks
            if include_erase:
                yield from channel_device.write_fresh(target)
            else:
                if channel_device.ftl.is_mapped(target):
                    yield from channel_device.erase(target)
                yield from channel_device.write(target)
            meter.record(sim.now, channel_device.logical_block_bytes)
            block += 1

    procs = [
        sim.process(writer(sdf.channels[channel])) for channel in targets
    ]
    sim.run(until=AllOf(sim, procs))
    return _window_mb_per_s(meter, measure_from, deadline)


def drive_conventional_reads(
    sim: Simulator,
    device: ConventionalSSD,
    request_bytes: int,
    duration_ns: int,
    queue_depth: int = 32,
    rng: Optional[np.random.Generator] = None,
    sequential: bool = False,
    warmup_ns: int = 0,
) -> float:
    """One async submitter modeled as ``queue_depth`` outstanding
    requests against the single exposed device."""
    rng = rng if rng is not None else np.random.default_rng(0)
    page = device.page_size
    n_pages = max(1, request_bytes // page)
    slots = device.user_pages // n_pages
    if slots < 1:
        raise ValueError("request larger than user capacity")
    meter = ThroughputMeter("conv.read")
    deadline = sim.now + duration_ns
    measure_from = sim.now + warmup_ns
    sequence = {"cursor": 0}

    def worker(seed):
        local = np.random.default_rng(seed)
        while sim.now < deadline:
            if sequential:
                slot = sequence["cursor"] % slots
                sequence["cursor"] += 1
            else:
                slot = int(local.integers(slots))
            yield from device.read(slot * n_pages, n_pages)
            meter.record(sim.now, n_pages * page)

    procs = [sim.process(worker(500 + i)) for i in range(queue_depth)]
    sim.run(until=AllOf(sim, procs))
    return _window_mb_per_s(meter, measure_from, deadline)


def drive_conventional_writes(
    sim: Simulator,
    device: ConventionalSSD,
    request_bytes: int,
    duration_ns: int,
    queue_depth: int = 32,
    rng: Optional[np.random.Generator] = None,
    sequential: bool = True,
    warmup_ns: int = 0,
) -> float:
    """Async writes at a given queue depth (sequential by default, as in
    the Table 1/4 peak-bandwidth procedure)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    page = device.page_size
    n_pages = max(1, request_bytes // page)
    slots = device.user_pages // n_pages
    if slots < 1:
        raise ValueError("request larger than user capacity")
    meter = ThroughputMeter("conv.write")
    deadline = sim.now + duration_ns
    measure_from = sim.now + warmup_ns
    sequence = {"cursor": 0}

    def worker(seed):
        local = np.random.default_rng(seed)
        while sim.now < deadline:
            if sequential:
                slot = sequence["cursor"] % slots
                sequence["cursor"] += 1
            else:
                slot = int(local.integers(slots))
            yield from device.write(slot * n_pages, n_pages)
            meter.record(sim.now, n_pages * page)

    procs = [sim.process(worker(900 + i)) for i in range(queue_depth)]
    sim.run(until=AllOf(sim, procs))
    drained = sim.process(device.drain())
    sim.run(until=drained)
    return _window_mb_per_s(meter, measure_from, deadline)

"""Request-trace record and replay.

Production tuning at Baidu relies on replaying captured request streams
against candidate configurations; this module provides the equivalent:
a :class:`Trace` of timestamped operations that can be replayed against
an SDF with either original timing (open loop) or as fast as the device
allows (closed loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.devices.sdf import SDFDevice
from repro.sim import AllOf, Simulator
from repro.sim.stats import LatencyRecorder


@dataclass(frozen=True)
class TraceEvent:
    """One logged operation."""

    at_ns: int
    op: str  # "read" | "write" | "erase"
    channel: int
    block: int
    page_offset: int = 0
    n_pages: int = 1

    def __post_init__(self):
        if self.op not in ("read", "write", "erase"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.at_ns < 0:
            raise ValueError("negative timestamp")


class Trace:
    """An append-only, time-ordered sequence of events."""

    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events: List[TraceEvent] = []
        for event in events or []:
            self.append(event)

    def append(self, event: TraceEvent) -> None:
        """Append one event (must not go backwards in time)."""
        if self.events and event.at_ns < self.events[-1].at_ns:
            raise ValueError("trace events must be time-ordered")
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def duration_ns(self) -> int:
        """Timestamp of the last event (0 if empty)."""
        return self.events[-1].at_ns if self.events else 0

    def scaled(self, time_factor: float) -> "Trace":
        """Speed up (factor < 1) or slow down the arrival process."""
        if time_factor <= 0:
            raise ValueError("time_factor must be positive")
        return Trace(
            [
                TraceEvent(
                    int(event.at_ns * time_factor),
                    event.op,
                    event.channel,
                    event.block,
                    event.page_offset,
                    event.n_pages,
                )
                for event in self.events
            ]
        )


def replay_on_sdf(
    sim: Simulator,
    sdf: SDFDevice,
    trace: Trace,
    open_loop: bool = True,
) -> LatencyRecorder:
    """Replay a trace; returns the per-request latency recorder.

    Open loop: each event is issued at its recorded timestamp (late
    events are issued immediately).  Closed loop: events are issued
    back-to-back, one outstanding request per channel.
    """
    latencies = LatencyRecorder("replay")

    def issue(event: TraceEvent):
        channel = sdf.channels[event.channel]
        start = sim.now
        if event.op == "read":
            yield from channel.read(event.block, event.page_offset, event.n_pages)
        elif event.op == "write":
            if channel.ftl.is_mapped(event.block):
                yield from channel.erase(event.block)
            yield from channel.write(event.block)
        else:
            if channel.ftl.is_mapped(event.block):
                yield from channel.erase(event.block)
        latencies.record(sim.now - start)

    if open_loop:

        def dispatcher():
            started = []
            base = sim.now
            for event in trace.events:
                target = base + event.at_ns
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
                started.append(sim.process(issue(event)))
            if started:
                yield AllOf(sim, started)

        sim.run(until=sim.process(dispatcher()))
    else:
        per_channel: dict = {}
        for event in trace.events:
            per_channel.setdefault(event.channel, []).append(event)

        def channel_worker(events):
            for event in events:
                yield from issue(event)

        procs = [
            sim.process(channel_worker(events))
            for events in per_channel.values()
        ]
        sim.run(until=AllOf(sim, procs))
    return latencies

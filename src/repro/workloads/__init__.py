"""Workload generators for the paper's experiments.

* :mod:`~repro.workloads.distributions` -- the request-size mix of the
  production system (web pages 32 KB, thumbnails 128 KB, images 512 KB;
  write sizes 100 KB - 1 MB for Figure 14);
* :mod:`~repro.workloads.keys` -- key-popularity models (uniform,
  zipfian over the full keyspace, hot-set shift) plus the legacy
  key-sequence generators;
* :mod:`~repro.workloads.generators` -- closed-loop device drivers used
  by the microbenchmarks (Table 4, Figures 7-8);
* :mod:`~repro.workloads.arrivals` -- open-loop arrival schedules
  (diurnal waves, flash-crowd spikes, Poisson thinning);
* :mod:`~repro.workloads.tenants` -- YCSB-style operation mixes and
  per-tenant SLO declarations;
* :mod:`~repro.workloads.scenarios` -- seeded fleet-day scenarios that
  drive a multi-node cluster with every plane attached;
* :mod:`~repro.workloads.traces` -- record/replay of request traces.
"""

from repro.workloads.arrivals import (
    ArrivalStats,
    DiurnalWave,
    OpenLoopArrivals,
    RateSchedule,
    Spike,
)
from repro.workloads.distributions import (
    FIG12_REQUEST_SIZES,
    FIG14_WRITE_SIZES,
    SizeDistribution,
)
from repro.workloads.generators import (
    drive_conventional_reads,
    drive_conventional_writes,
    drive_sdf_reads,
    drive_sdf_writes,
)
from repro.workloads.keys import (
    HotSetShiftKeyModel,
    KeyModel,
    UniformKeyModel,
    ZipfianKeyModel,
    sequential_keys,
    uniform_keys,
    zipfian_keys,
)
from repro.workloads.scenarios import (
    FaultBurst,
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    TenantReport,
    run_scenario,
    run_scenario_sharded,
)
from repro.workloads.tenants import (
    OP_KINDS,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_E,
    OpMix,
    SloSpec,
    TenantSpec,
)
from repro.workloads.traces import Trace, TraceEvent, replay_on_sdf

__all__ = [
    "SizeDistribution",
    "FIG12_REQUEST_SIZES",
    "FIG14_WRITE_SIZES",
    "KeyModel",
    "UniformKeyModel",
    "ZipfianKeyModel",
    "HotSetShiftKeyModel",
    "sequential_keys",
    "uniform_keys",
    "zipfian_keys",
    "DiurnalWave",
    "Spike",
    "RateSchedule",
    "OpenLoopArrivals",
    "ArrivalStats",
    "OP_KINDS",
    "OpMix",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_E",
    "SloSpec",
    "TenantSpec",
    "FaultBurst",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "TenantReport",
    "run_scenario",
    "run_scenario_sharded",
    "drive_sdf_reads",
    "drive_sdf_writes",
    "drive_conventional_reads",
    "drive_conventional_writes",
    "Trace",
    "TraceEvent",
    "replay_on_sdf",
]

"""Workload generators for the paper's experiments.

* :mod:`~repro.workloads.distributions` -- the request-size mix of the
  production system (web pages 32 KB, thumbnails 128 KB, images 512 KB;
  write sizes 100 KB - 1 MB for Figure 14);
* :mod:`~repro.workloads.keys` -- key-sequence generators (sequential,
  uniform, zipfian for the skewed-load ablation);
* :mod:`~repro.workloads.generators` -- closed-loop device drivers used
  by the microbenchmarks (Table 4, Figures 7-8);
* :mod:`~repro.workloads.traces` -- record/replay of request traces.
"""

from repro.workloads.distributions import (
    FIG12_REQUEST_SIZES,
    FIG14_WRITE_SIZES,
    SizeDistribution,
)
from repro.workloads.generators import (
    drive_conventional_reads,
    drive_conventional_writes,
    drive_sdf_reads,
    drive_sdf_writes,
)
from repro.workloads.keys import (
    sequential_keys,
    uniform_keys,
    zipfian_keys,
)
from repro.workloads.traces import Trace, TraceEvent, replay_on_sdf

__all__ = [
    "SizeDistribution",
    "FIG12_REQUEST_SIZES",
    "FIG14_WRITE_SIZES",
    "sequential_keys",
    "uniform_keys",
    "zipfian_keys",
    "drive_sdf_reads",
    "drive_sdf_writes",
    "drive_conventional_reads",
    "drive_conventional_writes",
    "Trace",
    "TraceEvent",
    "replay_on_sdf",
]

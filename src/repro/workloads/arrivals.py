"""Open-loop arrival processes with time-varying rate schedules.

A production service is not a constant-rate sweep: traffic follows a
diurnal wave, spikes into flash crowds, and never backs off because the
storage tier is slow (the load is *open-loop* -- users keep clicking).
This module models that as a composable :class:`RateSchedule`:

* a ``base_rps`` carrier rate;
* an optional :class:`DiurnalWave` (sinusoidal day/night swing);
* any number of :class:`Spike` windows (flash crowds, multiplying the
  instantaneous rate while active).

:class:`OpenLoopArrivals` turns a schedule into concrete arrival
timestamps, either Poisson (thinned non-homogeneous process, the
textbook Lewis-Shedler construction) or evenly paced.  Everything is a
pure function of (schedule, seed, window), so the same inputs always
produce the identical arrival sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro.sim.units import S


@dataclass(frozen=True)
class DiurnalWave:
    """A sinusoidal day/night swing multiplying the base rate.

    Instantaneous multiplier: ``1 + amplitude * sin(2*pi*(t/period +
    phase))``; amplitude 0.5 means the trough runs at half the base
    rate and the peak at 1.5x.  ``period_ns`` defaults to a scaled-down
    "day" of one simulated second, matching the benchmarks' compressed
    timelines.
    """

    amplitude: float = 0.5
    period_ns: int = S
    phase: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_ns < 1:
            raise ValueError("period_ns must be >= 1")

    def multiplier(self, t_ns: int) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t_ns / self.period_ns + self.phase)
        )


@dataclass(frozen=True)
class Spike:
    """A flash crowd: rate multiplied by ``multiplier`` in a window."""

    at_ns: int
    duration_ns: int
    multiplier: float = 3.0

    def __post_init__(self):
        if self.at_ns < 0:
            raise ValueError("at_ns must be >= 0")
        if self.duration_ns < 1:
            raise ValueError("duration_ns must be >= 1")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be > 0")

    def active(self, t_ns: int) -> bool:
        return self.at_ns <= t_ns < self.at_ns + self.duration_ns


@dataclass(frozen=True)
class RateSchedule:
    """base_rps shaped by an optional diurnal wave and spike windows."""

    base_rps: float
    wave: "DiurnalWave | None" = None
    spikes: Tuple[Spike, ...] = ()

    def __post_init__(self):
        if self.base_rps <= 0:
            raise ValueError("base_rps must be > 0")
        # Tolerate a list literal at the call site.
        object.__setattr__(self, "spikes", tuple(self.spikes))

    def rate_at(self, t_ns: int) -> float:
        """Instantaneous offered rate (requests/s) at ``t_ns``."""
        rate = self.base_rps
        if self.wave is not None:
            rate *= self.wave.multiplier(t_ns)
        for spike in self.spikes:
            if spike.active(t_ns):
                rate *= spike.multiplier
        return rate

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` over all time (the
        thinning envelope for Poisson arrival generation)."""
        rate = self.base_rps
        if self.wave is not None:
            rate *= 1.0 + self.wave.amplitude
        for spike in self.spikes:
            rate *= max(spike.multiplier, 1.0)
        return rate


class OpenLoopArrivals:
    """Concrete arrival timestamps for one schedule.

    ``poisson=True`` (default) draws a non-homogeneous Poisson process
    by thinning against :meth:`RateSchedule.peak_rate`; ``False`` paces
    arrivals evenly at the instantaneous rate (deterministic spacing,
    useful for byte-identical load baselines).
    """

    def __init__(self, schedule: RateSchedule, poisson: bool = True):
        self.schedule = schedule
        self.poisson = poisson

    def times(
        self,
        rng: np.random.Generator,
        start_ns: int,
        end_ns: int,
    ) -> Iterator[int]:
        """Arrival timestamps (int ns) in [start_ns, end_ns), ascending."""
        if end_ns <= start_ns:
            return
        if self.poisson:
            yield from self._poisson_times(rng, start_ns, end_ns)
        else:
            yield from self._paced_times(start_ns, end_ns)

    def _poisson_times(self, rng, start_ns: int, end_ns: int):
        peak = self.schedule.peak_rate()
        t = float(start_ns)
        last = None
        while True:
            # Exponential gap at the envelope rate, then thin.
            t += rng.exponential(1e9 / peak)
            if t >= end_ns:
                return
            if rng.random() < self.schedule.rate_at(int(t)) / peak:
                at = int(t)
                # Integer truncation can collapse sub-nanosecond gaps;
                # timestamps are contractually *strictly* ascending.
                if last is not None and at <= last:
                    at = last + 1
                    if at >= end_ns:
                        return
                last = at
                yield at

    def _paced_times(self, start_ns: int, end_ns: int):
        t = float(start_ns)
        last = None
        while t < end_ns:
            at = int(t)
            if last is not None and at <= last:
                at = last + 1
                if at >= end_ns:
                    return
            last = at
            yield at
            rate = self.schedule.rate_at(int(t))
            t += 1e9 / rate


@dataclass
class ArrivalStats:
    """Bookkeeping helper: counts arrivals per fixed-width bucket (for
    tests asserting the wave/spike shape actually materialised)."""

    bucket_ns: int
    counts: List[int] = field(default_factory=list)

    def record(self, t_ns: int) -> None:
        index = t_ns // self.bucket_ns
        while len(self.counts) <= index:
            self.counts.append(0)
        self.counts[index] += 1

"""Legacy setup shim: the offline environment lacks the `wheel` package,
so PEP 660 editable installs fail; `setup.py develop` still works."""

from setuptools import setup

setup()
